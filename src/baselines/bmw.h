// (Block-Max) WAND: the document-order state of the art (§3.1).
//
// BmwScan() is the reusable range scanner: it runs WAND pivoting —
// optionally refined with block-max skipping (Ding & Suel, SIGIR'11) —
// over a docid range, feeding a caller-owned heap. It is the building
// block of both the sequential BMW/WAND algorithms here and the parallel
// pBMW (baselines/pbmw.*).
#pragma once

#include <atomic>
#include <span>

#include "topk/algorithm.h"
#include "topk/doc_heap.h"

namespace sparta::algos {

struct BmwScanParams {
  /// false = plain WAND (term-level bounds only).
  bool use_block_max = true;
  /// Threshold relaxation f >= 1 (§5.2.1): pruning uses f * Θ, trading
  /// recall for skipping; f = 1 is exact.
  double f = 1.0;
  DocId range_begin = 0;
  DocId range_end = kInvalidDoc;  ///< exclusive
  /// pBMW's shared threshold: periodically promote
  /// max(local Θ, global Θ) in both directions (§5.2.1). Null when
  /// running standalone.
  std::atomic<Score>* shared_theta = nullptr;
  /// Documents scored between two promotions.
  std::uint32_t sync_interval = 1024;
  topk::HeapTracer* tracer = nullptr;
  /// Emit one obs postings.scan span per BmwScan call (no-op unless the
  /// executor also has tracing enabled).
  bool trace_spans = false;
};

struct BmwScanStats {
  std::uint64_t postings = 0;      ///< cursor advances
  std::uint64_t scored = 0;        ///< fully evaluated documents
  std::uint64_t heap_inserts = 0;
  /// Most severe anytime-stop cause observed across the scans feeding
  /// these stats (kNone when every scan ran to its pruning bound).
  exec::StopCause stopped = exec::StopCause::kNone;
};

/// Scans [range_begin, range_end) and inserts qualifying documents into
/// `heap` (which must not be shared with concurrent writers).
void BmwScan(const index::InvertedIndex& idx, std::span<const TermId> terms,
             topk::TopKHeap& heap, const BmwScanParams& params,
             exec::WorkerContext& w, BmwScanStats& stats);

/// Sequential BMW / WAND as a top-level algorithm (one job; use pBMW for
/// intra-query parallelism).
class BlockMaxWand final : public topk::Algorithm {
 public:
  explicit BlockMaxWand(bool use_block_max = true)
      : use_block_max_(use_block_max) {}

  std::string_view name() const override {
    return use_block_max_ ? "BMW" : "WAND";
  }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;

 private:
  bool use_block_max_;
};

}  // namespace sparta::algos

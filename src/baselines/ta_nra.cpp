#include "baselines/ta_nra.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "topk/doc_map.h"

namespace sparta::algos {
namespace {

using exec::VirtualTime;
using exec::WorkerContext;
using index::Posting;

struct Candidate {
  std::vector<Score> score;  // per query term, 0 = unseen
  Score lb = 0;
  bool in_heap = false;
};

}  // namespace

NraShardOutput NraShardScan(const NraShardInput& input, WorkerContext& w) {
  const std::size_t m = input.lists.size();
  SPARTA_CHECK(m >= 1);
  NraShardOutput out;

  const std::int64_t entry_bytes =
      topk::ModeledEntryBytes(static_cast<int>(m), /*concurrent=*/false);
  std::int64_t charged_bytes = 0;

  std::unordered_map<DocId, Candidate> candidates;
  std::vector<Score> ub(m);
  std::vector<std::size_t> pos(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    ub[i] = input.lists[i].postings.empty()
                ? 0
                : static_cast<Score>(input.lists[i].postings[0].score);
  }

  // Lower-bound top-k heap with lazy refresh (same discipline as the
  // parallel variants; sequential, so no locks).
  std::vector<Candidate*> heap;
  std::vector<DocId> heap_ids;
  heap.reserve(static_cast<std::size_t>(input.k));
  heap_ids.reserve(static_cast<std::size_t>(input.k));
  Score theta = 0;

  auto heap_lowest = [&]() -> std::size_t {
    std::size_t lowest = 0;
    for (std::size_t i = 1; i < heap.size(); ++i) {
      if (heap[i]->lb < heap[lowest]->lb ||
          (heap[i]->lb == heap[lowest]->lb &&
           heap_ids[i] > heap_ids[lowest])) {
        lowest = i;
      }
    }
    return lowest;
  };

  VirtualTime last_heap_change = w.Now();
  bool ubstop = false;
  bool done = false;

  auto try_insert = [&](DocId id, Candidate* c) {
    if (c->in_heap) return;
    for (Candidate* member : heap) {
      member->lb = 0;
      for (const Score s : member->score) member->lb += s;
    }
    c->in_heap = true;
    heap.push_back(c);
    heap_ids.push_back(id);
    bool changed = true;
    if (heap.size() > static_cast<std::size_t>(input.k)) {
      const std::size_t lowest = heap_lowest();
      heap[lowest]->in_heap = false;
      changed = (heap[lowest] != c);
      heap[lowest] = heap.back();
      heap_ids[lowest] = heap_ids.back();
      heap.pop_back();
      heap_ids.pop_back();
    }
    if (heap.size() == static_cast<std::size_t>(input.k)) {
      theta = heap[heap_lowest()]->lb;
    }
    w.Charge(static_cast<VirtualTime>(heap.size()) * 3);
    if (changed) {
      last_heap_change = w.Now();
      if (input.tracer != nullptr) {
        input.tracer->OnHeapUpdate(w.Now(), id, c->lb);
      }
    }
  };

  for (const auto& list : input.lists) {
    out.postings_total += list.postings.size();
  }

  while (!done) {
    // Anytime poll once per round-robin pass: a stopped shard returns its
    // current lower-bound heap as the partial top-k.
    if (w.ShouldStop()) {
      out.stopped = exec::MergeStopCause(out.stopped, w.stop_cause());
      break;
    }
    bool any_progress = false;
    for (std::size_t i = 0; i < m && !done; ++i) {
      // Segment-boundary poll: virtual time advances within a pass, so a
      // deadline can fire between two lists of the same round.
      if (i > 0 && w.ShouldStop()) {
        out.stopped = exec::MergeStopCause(out.stopped, w.stop_cause());
        done = true;
        break;
      }
      const auto& list = input.lists[i].postings;
      const std::size_t begin = pos[i];
      const std::size_t end =
          std::min<std::size_t>(begin + input.seg_size, list.size());
      if (begin >= end) continue;
      any_progress = true;
      obs::SpanScope scan_span(w, obs::SpanKind::kPostingsScan,
                               input.trace_spans);
      w.IoSequential(input.lists[i].io_offset + begin * sizeof(Posting),
                     (end - begin) * sizeof(Posting));

      for (std::size_t j = begin; j < end; ++j) {
        const Posting posting = list[j];
        Candidate* c = nullptr;
        if (!ubstop) {
          const auto [it, inserted] =
              candidates.try_emplace(posting.doc);
          if (inserted) {
            it->second.score.assign(m, 0);
            charged_bytes += entry_bytes;
            if (!w.ChargeMemory(entry_bytes)) {
              out.oom = true;
              done = true;
              break;
            }
          }
          c = &it->second;
        } else {
          const auto it = candidates.find(posting.doc);
          if (it == candidates.end()) continue;
          c = &it->second;
        }
        c->score[i] = static_cast<Score>(posting.score);
        c->lb = 0;
        for (const Score s : c->score) c->lb += s;
        if (c->lb > theta) try_insert(posting.doc, c);
      }
      if (done) break;
      pos[i] = end;
      const auto processed = static_cast<std::uint64_t>(end - begin);
      out.postings += processed;
      w.ChargePostings(processed);
      scan_span.set_args(static_cast<std::uint64_t>(i), processed);
      w.StructureAccessMany(
          candidates.size() * (sizeof(Candidate) + 4 * m + 32),
          /*write_shared=*/false, processed);
      ub[i] = pos[i] >= list.size()
                  ? 0
                  : static_cast<Score>(list[pos[i]].score);
    }
    if (done) break;
    out.peak_candidates =
        std::max<std::uint64_t>(out.peak_candidates, candidates.size());

    // Stopping condition 1 (Eq. 1): latch the insert cutoff.
    if (!ubstop) {
      Score ub_sum = 0;
      for (const Score u : ub) ub_sum += u;
      ubstop = ub_sum <= theta;
    }
    // Δ heuristic.
    if (input.delta != exec::kNever &&
        last_heap_change + input.delta < w.Now()) {
      break;
    }
    // Stopping condition 2 (Eq. 2): every candidate outside the heap is
    // beaten. Only checkable (and only reachable) after UBStop.
    if (ubstop) {
      bool resolved = true;
      // sparta-lint: allow(unordered-iter) order-insensitive: an
      // AND-reduction over all candidates; the early break changes
      // which element disproves it, never the verdict.
      for (auto& [id, c] : candidates) {
        if (c.in_heap) continue;
        Score cand_ub = 0;
        for (std::size_t i = 0; i < m; ++i) {
          cand_ub += c.score[i] > 0 ? c.score[i] : ub[i];
        }
        if (cand_ub > theta) {
          resolved = false;
          break;
        }
      }
      w.Charge(static_cast<VirtualTime>(candidates.size()) *
               (static_cast<VirtualTime>(m) + 4));
      if (resolved) break;
    }
    if (!any_progress && ubstop) break;  // exhausted; nothing to resolve
    SPARTA_CHECK_MSG(any_progress || ubstop,
                     "NRA made no progress before UBStop");
  }

  // Harvest the heap.
  out.topk.reserve(heap.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    out.topk.push_back({heap_ids[i], heap[i]->lb});
  }
  topk::CanonicalizeResult(out.topk);
  // The shard's candidate map dies with the scan.
  (void)w.ChargeMemory(-charged_bytes);
  return out;
}

}  // namespace sparta::algos

// sNRA — shared-nothing parallelization of NRA (§5.2.2).
//
// The index is partitioned into (num workers) shards by docid; each
// worker runs sequential NRA on its shard with thread-local data
// structures; a final job merges the per-shard top-k lists. No
// information is shared between the threads — the paper's strawman
// showing that *some* sharing (a global Θ) is essential: each shard must
// discover its own top-k from scratch, so the aggregate work is roughly
// (num shards) x the work of one global NRA pass.
#pragma once

#include "topk/algorithm.h"

namespace sparta::algos {

class SNra final : public topk::Algorithm {
 public:
  /// `parallel_name` false gives the sequential baseline name ("TA-NRA",
  /// a single shard spanning the whole index).
  explicit SNra(bool parallel_name = true)
      : name_(parallel_name ? "sNRA" : "TA-NRA"), single_shard_(!parallel_name) {}

  std::string_view name() const override { return name_; }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override;

 private:
  std::string_view name_;
  bool single_shard_;
};

}  // namespace sparta::algos

// pNRA — the naïve shared-state parallel NRA (§5.2.2).
//
// "It uses a shared document map, which it does not clean, and it
//  updates the term upper bounds upon every document evaluation. As in
//  Sparta, a dedicated task checks the stopping condition."
//
// Implemented as the Sparta engine with every §4.3 optimization switched
// off: eager UB publication (cache-line ping-pong on UB), no cleaner
// pruning (the map — and hence the working set — only grows), no termMap
// replicas (all lookups hit the shared map), and no insert cutoff (new
// documents keep being added after UBStop). This is both faithful to the
// paper's description and the cleanest possible ablation: the measured
// gap between pNRA and Sparta *is* the sum of Sparta's optimizations.
#pragma once

#include "core/sparta.h"

namespace sparta::algos {

/// Factory for the pNRA configuration of the Sparta engine.
inline core::SpartaOptions PNraOptions() {
  core::SpartaOptions options;
  options.lazy_ub_updates = false;
  options.cleaner_prunes = false;
  options.term_maps = false;
  options.insert_cutoff_at_ubstop = false;
  options.name = "pNRA";
  return options;
}

class PNra final : public topk::Algorithm {
 public:
  PNra() : engine_(PNraOptions()) {}

  std::string_view name() const override { return engine_.name(); }

  std::unique_ptr<topk::QueryRun> Prepare(const index::InvertedIndex& idx,
                                          std::vector<TermId> terms,
                                          const topk::SearchParams& params,
                                          exec::QueryContext& ctx)
      const override {
    return engine_.Prepare(idx, std::move(terms), params, ctx);
  }

 private:
  core::Sparta engine_;
};

}  // namespace sparta::algos

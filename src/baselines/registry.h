// Algorithm registry: string name -> configured Algorithm instance.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "topk/algorithm.h"

namespace sparta::algos {

/// Creates an algorithm by name. Known names:
///   "Sparta", "pNRA", "sNRA", "pRA", "pBMW", "pJASS"   (the paper's
///   §5 comparison set), and the sequential ancestors
///   "TA-RA", "TA-NRA", "JASS", "BMW", "WAND", "MaxScore".
/// Returns nullptr for unknown names.
std::unique_ptr<topk::Algorithm> MakeAlgorithm(std::string_view name);

/// The paper's parallel comparison set, in its reporting order.
std::vector<std::string_view> PaperAlgorithms();

/// Every registered name.
std::vector<std::string_view> AllAlgorithms();

}  // namespace sparta::algos

#include "obs/critical_path.h"

#include "util/common.h"

namespace sparta::obs {

CriticalPath AttributeQuery(const Tracer& tracer, std::size_t record,
                            exec::VirtualTime arrival,
                            exec::VirtualTime dispatch,
                            exec::VirtualTime completion) {
  CriticalPath path;
  path.record = record;
  if (completion < dispatch || dispatch < arrival) return path;
  path.found = true;
  path.queue_wait = dispatch - arrival;

  // The winning attempt: the rpc span whose reply arrival IS the
  // finalize instant (first reply wins per shard; the query finalizes
  // on its last shard's resolution). Smallest payload breaks ties.
  const TraceEvent* winner = nullptr;
  int winner_track = -1;
  for (int t = 0; t < tracer.num_workers(); ++t) {
    for (const TraceEvent& e : tracer.track(t)) {
      if (e.is_instant || e.a != record) continue;
      if (e.span_kind() != SpanKind::kShardRpc) continue;
      if (e.end != completion) continue;
      if (winner == nullptr || e.b < winner->b) {
        winner = &e;
        winner_track = t;
      }
    }
  }

  if (winner == nullptr) {
    // No reply landed at the finalize instant: the last shard was given
    // up (attempt timeouts or instant breaker exhaustion), so the whole
    // tail is retry/timeout overhead. The newest shard.timeout instant
    // at or before completion names the shard when one exists.
    path.timeout_bound = true;
    path.retry_overhead = completion - dispatch;
    const int serving = tracer.serving_track();
    exec::VirtualTime best_ts = -1;
    for (const TraceEvent& e : tracer.track(serving)) {
      if (!e.is_instant || e.a != record) continue;
      if (e.instant_kind() != InstantKind::kShardTimeout) continue;
      if (e.begin <= completion && e.begin >= best_ts) {
        best_ts = e.begin;
        path.shard = static_cast<int>(e.b);
      }
    }
    return path;
  }

  path.shard = UnpackShard(winner->b);
  path.attempt = UnpackAttempt(winner->b);
  path.node = winner_track;
  path.retry_overhead = winner->begin - dispatch;
  path.merge = completion - winner->end;  // 0 in the current model

  // The child service span shares the correlation payload and track.
  const TraceEvent* service = nullptr;
  for (const TraceEvent& e : tracer.track(winner_track)) {
    if (e.is_instant || e.a != record || e.b != winner->b) continue;
    if (e.span_kind() != SpanKind::kShardService) continue;
    service = &e;
    break;
  }
  if (service == nullptr) {
    // Parent without child should not happen (they are emitted
    // together); attribute the whole parent to service to stay exact.
    path.service = winner->end - winner->begin;
    return path;
  }
  SPARTA_CHECK(service->begin >= winner->begin &&
               service->end <= winner->end);
  path.net_request = service->begin - winner->begin;
  path.service = service->end - service->begin;
  path.net_response = winner->end - service->end;
  return path;
}

}  // namespace sparta::obs

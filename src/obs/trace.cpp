#include "obs/trace.h"

#include "obs/flight_recorder.h"
#include "obs/profiler.h"

namespace sparta::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kJob:
      return "job";
    case SpanKind::kPostingsScan:
      return "postings.scan";
    case SpanKind::kDocMapAccess:
      return "docmap.access";
    case SpanKind::kHeapUpdate:
      return "heap.update";
    case SpanKind::kIoRead:
      return "io.read";
    case SpanKind::kLockWait:
      return "lock.wait";
    case SpanKind::kQueueWait:
      return "queue.wait";
    case SpanKind::kCleanerPass:
      return "cleaner.pass";
    case SpanKind::kTermMapBuild:
      return "termmap.build";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kFinalize:
      return "finalize";
    case SpanKind::kAdmissionWait:
      return "admission.wait";
    case SpanKind::kMergeBuild:
      return "merge.build";
    case SpanKind::kDeltaFreeze:
      return "delta.freeze";
    case SpanKind::kShardRpc:
      return "shard.rpc";
    case SpanKind::kShardService:
      return "shard.service";
  }
  return "span";
}

const char* InstantKindName(InstantKind kind) {
  switch (kind) {
    case InstantKind::kIoRetry:
      return "io.retry";
    case InstantKind::kFaultStall:
      return "fault.stall";
    case InstantKind::kAdmissionReject:
      return "admission.reject";
    case InstantKind::kAdmissionShed:
      return "admission.shed";
    case InstantKind::kBreakerDrop:
      return "breaker.drop";
    case InstantKind::kLadderRung:
      return "ladder.rung";
    case InstantKind::kBreakerState:
      return "breaker.state";
    case InstantKind::kMergePublish:
      return "merge.publish";
    case InstantKind::kMergeAbort:
      return "merge.abort";
    case InstantKind::kEpochReclaim:
      return "epoch.reclaim";
    case InstantKind::kShardTimeout:
      return "shard.timeout";
    case InstantKind::kShardHedge:
      return "shard.hedge";
    case InstantKind::kNetDrop:
      return "net.drop";
    case InstantKind::kNodeCrash:
      return "node.crash";
    case InstantKind::kNodeRestart:
      return "node.restart";
    case InstantKind::kSloBreach:
      return "slo.breach";
  }
  return "instant";
}

const char* SpanArgName(SpanKind kind, int slot) {
  switch (kind) {
    case SpanKind::kJob:
    case SpanKind::kQueueWait:
      return slot == 0 ? "query" : "seq";
    case SpanKind::kPostingsScan:
      return slot == 0 ? "term" : "postings";
    case SpanKind::kDocMapAccess:
      return slot == 0 ? "doc" : "op";
    case SpanKind::kHeapUpdate:
      return slot == 0 ? "doc" : "score";
    case SpanKind::kIoRead:
      return slot == 0 ? "page" : "flags";
    case SpanKind::kLockWait:
      return slot == 0 ? "lock" : "arg";
    case SpanKind::kCleanerPass:
      return slot == 0 ? "scanned" : "kept";
    case SpanKind::kTermMapBuild:
      return slot == 0 ? "term" : "entries";
    case SpanKind::kMerge:
      return slot == 0 ? "items" : "arg";
    case SpanKind::kFinalize:
      return slot == 0 ? "scanned" : "arg";
    case SpanKind::kAdmissionWait:
      return slot == 0 ? "record" : "rung";
    case SpanKind::kMergeBuild:
      return slot == 0 ? "chunk" : "postings";
    case SpanKind::kDeltaFreeze:
      return slot == 0 ? "docs" : "postings";
    case SpanKind::kShardRpc:
    case SpanKind::kShardService:
      return slot == 0 ? "record" : "shard_attempt";
  }
  return slot == 0 ? "a" : "b";
}

const char* InstantArgName(InstantKind kind, int slot) {
  switch (kind) {
    case InstantKind::kIoRetry:
      return slot == 0 ? "retries" : "page";
    case InstantKind::kFaultStall:
      return slot == 0 ? "stall_ns" : "query";
    case InstantKind::kAdmissionReject:
    case InstantKind::kAdmissionShed:
    case InstantKind::kBreakerDrop:
      return slot == 0 ? "record" : "arg";
    case InstantKind::kLadderRung:
      return slot == 0 ? "rung" : "record";
    case InstantKind::kBreakerState:
      return slot == 0 ? "state" : "arg";
    case InstantKind::kMergePublish:
      return slot == 0 ? "epoch" : "docs";
    case InstantKind::kMergeAbort:
      return slot == 0 ? "epoch" : "outcome";
    case InstantKind::kEpochReclaim:
      return slot == 0 ? "reclaimed" : "epoch";
    case InstantKind::kShardTimeout:
    case InstantKind::kShardHedge:
    case InstantKind::kNetDrop:
      return slot == 0 ? "record" : "shard";
    case InstantKind::kNodeCrash:
    case InstantKind::kNodeRestart:
      return slot == 0 ? "node" : "arg";
    case InstantKind::kSloBreach:
      return slot == 0 ? "burn_pm" : "bucket";
  }
  return slot == 0 ? "a" : "b";
}

Tracer::Tracer(int num_workers) : num_workers_(num_workers) {
  SPARTA_CHECK(num_workers >= 1);
  tracks_.resize(static_cast<std::size_t>(num_tracks()));
}

void Tracer::AddSpan(int track, SpanKind kind, exec::VirtualTime begin,
                     exec::VirtualTime end, std::uint64_t a,
                     std::uint64_t b) {
  SPARTA_CHECK(track >= 0 && track < num_tracks());
  SPARTA_CHECK(end >= begin);
  const util::MutexLock guard(mutex_);
  tracks_[static_cast<std::size_t>(track)].push_back(
      {begin, end, a, b, static_cast<std::uint8_t>(kind), false});
}

void Tracer::AddInstant(int track, InstantKind kind, exec::VirtualTime ts,
                        std::uint64_t a, std::uint64_t b) {
  SPARTA_CHECK(track >= 0 && track < num_tracks());
  const util::MutexLock guard(mutex_);
  tracks_[static_cast<std::size_t>(track)].push_back(
      {ts, ts, a, b, static_cast<std::uint8_t>(kind), true});
}

std::size_t Tracer::total_events() const {
  const util::MutexLock guard(mutex_);
  std::size_t total = 0;
  for (const auto& t : tracks_) total += t.size();
  return total;
}

std::uint64_t Tracer::CountSpans(SpanKind kind) const {
  const util::MutexLock guard(mutex_);
  std::uint64_t count = 0;
  for (const auto& t : tracks_) {
    for (const auto& e : t) {
      if (!e.is_instant && e.span_kind() == kind) ++count;
    }
  }
  return count;
}

std::uint64_t Tracer::CountInstants(InstantKind kind) const {
  const util::MutexLock guard(mutex_);
  std::uint64_t count = 0;
  for (const auto& t : tracks_) {
    for (const auto& e : t) {
      if (e.is_instant && e.instant_kind() == kind) ++count;
    }
  }
  return count;
}

std::uint64_t Tracer::SumSpanArgB(SpanKind kind) const {
  const util::MutexLock guard(mutex_);
  std::uint64_t sum = 0;
  for (const auto& t : tracks_) {
    for (const auto& e : t) {
      if (!e.is_instant && e.span_kind() == kind) sum += e.b;
    }
  }
  return sum;
}

std::uint64_t Tracer::SumInstantArgA(InstantKind kind) const {
  const util::MutexLock guard(mutex_);
  std::uint64_t sum = 0;
  for (const auto& t : tracks_) {
    for (const auto& e : t) {
      if (e.is_instant && e.instant_kind() == kind) sum += e.a;
    }
  }
  return sum;
}

void Tracer::Clear() {
  const util::MutexLock guard(mutex_);
  for (auto& t : tracks_) t.clear();
}

namespace detail {

void ProfilerPushFrame(Profiler& profiler, int worker, SpanKind kind) {
  profiler.PushFrame(worker, kind);
}

void ProfilerPopFrame(Profiler& profiler, int worker) {
  profiler.PopFrame(worker);
}

exec::VirtualTime RecorderAddSpan(FlightRecorder& recorder, int track,
                                  SpanKind kind, exec::VirtualTime begin,
                                  exec::VirtualTime end, std::uint64_t a,
                                  std::uint64_t b) {
  // Masked micro-kinds (per-page reads, lock waits...) are neither
  // retained nor charged — the black box records operations, not
  // instructions (see kFlightDefaultSpanMask).
  if (!recorder.RecordsSpan(kind)) return 0;
  recorder.AddSpan(track, kind, begin, end, a, b);
  return recorder.record_cost();
}

}  // namespace detail

}  // namespace sparta::obs

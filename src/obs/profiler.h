// Simulator-native profiling: where the contention and the cycles go.
//
// Two instruments, both driven by the executor's deterministic virtual
// clocks (no host timers, no signals):
//
//   * Contention profiler — a named address-range registry. Algorithms
//     register their shared hot structures (docMap stripes, UB arrays,
//     done flags, result-heap locks) once per query; every coherence
//     miss, invalidation and lock-wait interval the simulator prices is
//     then attributed to (data structure, owner algorithm phase, worker),
//     yielding per-structure contention tables and a "hottest cache
//     lines" report. This measures the paper's central claim directly:
//     Sparta's lazy UB updates and termMap replicas exist to drain
//     exactly these counters relative to pNRA/pRA.
//
//   * Virtual-time sampling profiler — snapshots each worker's live span
//     stack (the same SpanKind scopes the tracer records) every
//     `sample_period` virtual nanoseconds of *charged* work, producing
//     folded stacks (FlameGraph / speedscope collapsed format) and a
//     per-phase self-time table.
//
// Determinism contract (enforced by tests/test_profiler.cpp, same
// pattern as obs/trace.h): profiling is off by default and the off path
// is a null-pointer check — no charges, no allocations — so
// profiler-off runs are bit-identical to builds without this layer.
// With profiling on, hooks never charge virtual time; coherence lines of
// *registered* ranges are keyed by (structure, offset/64) instead of by
// heap address, so the same seed yields byte-identical contention
// reports and folded stacks regardless of allocator layout (unregistered
// addresses keep the address-derived key and land in an "(unregistered)"
// bucket).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/context.h"
#include "obs/trace.h"

namespace sparta::obs {

/// Runtime profiling knob, carried by SimConfig. Off by default.
struct ProfilerConfig {
  /// Attribute coherence misses, invalidations and lock waits to
  /// registered structures.
  bool contention = false;
  /// Sampling period in virtual ns (0 = sampling off). Every worker's
  /// span stack is snapshotted each time its charged work crosses a
  /// period boundary.
  exec::VirtualTime sample_period = 0;

  bool enabled() const { return contention || sample_period > 0; }
};

/// One row of the per-(structure, phase) contention breakdown. The phase
/// is the innermost live span (SpanKindName) at the time of the event,
/// "(none)" outside any span.
struct ContentionPhaseRow {
  std::string phase;
  std::uint64_t misses = 0;  ///< read misses + write RFO misses
  exec::VirtualTime lock_wait_ns = 0;
};

/// One of a structure's hottest cache lines. `line` names the range
/// ordinal within the structure and the 64-byte line offset inside it,
/// e.g. "docMap#17+0x0".
struct ContentionLineRow {
  std::string line;
  std::uint64_t misses = 0;
};

/// Aggregated contention of one registered structure.
struct ContentionStructureRow {
  std::string name;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads that paid an invalidation miss (line version moved).
  std::uint64_t read_misses = 0;
  /// Writes that paid a request-for-ownership round trip.
  std::uint64_t write_misses = 0;
  /// Misses (read or write) filled across the socket interconnect: the
  /// line's last writer sat on another NUMA domain. Always 0 on a
  /// single-domain machine — the local/remote split is how the NUMA
  /// stripe-placement experiments read their win.
  std::uint64_t remote_misses = 0;
  /// Remote copies invalidated by this structure's writes.
  std::uint64_t copies_invalidated = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;
  exec::VirtualTime lock_wait_ns = 0;
  /// Per-worker miss / lock-wait breakdown, indexed by worker id.
  std::vector<std::uint64_t> worker_misses;
  std::vector<exec::VirtualTime> worker_wait_ns;
  /// Per-phase breakdown, sorted by phase name.
  std::vector<ContentionPhaseRow> phases;
  /// Hottest cache lines, by misses descending (top 8).
  std::vector<ContentionLineRow> hot_lines;

  std::uint64_t misses() const { return read_misses + write_misses; }
};

/// Deterministic snapshot of the contention profiler, sorted by
/// structure name.
struct ContentionReport {
  std::vector<ContentionStructureRow> structures;
  std::uint64_t total_misses = 0;
  exec::VirtualTime total_lock_wait_ns = 0;
};

/// Renders a ContentionReport as a fixed-width text table (the format of
/// the committed results/contention_*.txt goldens): a per-structure
/// summary, per-phase rows, and the hottest-lines list. Byte-stable for
/// equal reports.
std::string RenderContentionReport(const ContentionReport& report,
                                   const std::string& title);

/// The profiling engine, owned by the simulator (constructed iff
/// ProfilerConfig::enabled(), like the tracer). All hooks are
/// charge-free: they never touch worker clocks.
class Profiler {
 public:
  Profiler(int num_workers, ProfilerConfig config);

  const ProfilerConfig& config() const { return config_; }
  int num_workers() const { return num_workers_; }

  // --- address-range registry -----------------------------------------

  /// Registers [addr, addr+bytes) under `structure`. Ranges registered
  /// under the same name aggregate (each gets a deterministic ordinal —
  /// registration order — used for line identity). A new range evicts
  /// any previously registered range it overlaps: heap addresses recycle
  /// across queries, so a stale mapping must never claim a new query's
  /// allocation.
  void RegisterRange(const void* addr, std::size_t bytes,
                     const char* structure);

  /// Drops all ranges and resets per-structure ordinals (called between
  /// latency-mode queries, with the coherence reset). Accumulated
  /// statistics persist.
  void ResetRanges();

  /// Where an address lives. `line_key` is the coherence-map key:
  /// structure-relative (and allocator-independent) for registered
  /// addresses, address-derived for unregistered ones — the two spaces
  /// are disjoint (registered keys have the top bit set).
  struct Resolution {
    std::uint64_t line_key = 0;
    std::uint32_t structure = 0;  ///< 0 = unregistered
    std::uint64_t line_id = 0;    ///< (ordinal << 20) | line-in-range
  };
  Resolution Resolve(const void* addr) const;

  // --- event sinks (called by the simulator) --------------------------

  /// One coherence event on a resolved line. `copies_invalidated` is the
  /// number of remote valid copies a write invalidated (0 for reads);
  /// `remote` marks a miss filled from another NUMA domain's cache.
  void OnSharedAccess(int worker, const Resolution& where,
                      exec::AccessKind kind, bool miss,
                      int copies_invalidated, bool remote = false);

  /// One lock acquisition. `lock` is resolved against the registry
  /// (register the CtxLock object's address to name it); `wait_ns` is
  /// stall + handoff for contended acquisitions, 0 otherwise — exactly
  /// the duration the tracer records as a lock.wait span, so the two
  /// instruments reconcile.
  void OnLockAcquire(int worker, const void* lock, bool contended,
                     exec::VirtualTime wait_ns);

  // --- span-stack maintenance and sampling ----------------------------

  void PushFrame(int worker, SpanKind kind);
  void PopFrame(int worker);

  /// Charged-work advance of one worker's clock from `before` to
  /// `after`; emits a sample for every period boundary crossed. Idle
  /// time (queue waits, dispatch gaps) is never sampled — the profile
  /// answers "what was the worker doing while it worked".
  void OnAdvance(int worker, exec::VirtualTime before,
                 exec::VirtualTime after);

  // --- results --------------------------------------------------------

  ContentionReport ContentionSnapshot() const;

  /// Folded samples: stack (outermost..innermost SpanKind codes; the
  /// sentinel 0xFF alone means "outside any span") -> sample count.
  const std::map<std::vector<std::uint8_t>, std::uint64_t>&
  folded_samples() const {
    return folded_;
  }
  std::uint64_t total_samples() const { return total_samples_; }
  exec::VirtualTime sample_period() const { return config_.sample_period; }

  /// Total contended lock-wait time recorded (all structures, including
  /// unregistered locks) — reconciles against the tracer's lock.wait
  /// span durations.
  exec::VirtualTime total_lock_wait_ns() const {
    return total_lock_wait_ns_;
  }

 private:
  struct Range {
    std::uintptr_t base = 0;
    std::uintptr_t end = 0;
    std::uint32_t structure = 0;
    std::uint32_t ordinal = 0;  ///< registration order within structure
  };

  struct PhaseAgg {
    std::uint64_t misses = 0;
    exec::VirtualTime lock_wait_ns = 0;
  };

  struct StructureStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t remote_misses = 0;
    std::uint64_t copies_invalidated = 0;
    std::uint64_t lock_acquires = 0;
    std::uint64_t lock_contended = 0;
    exec::VirtualTime lock_wait_ns = 0;
    std::vector<std::uint64_t> worker_misses;
    std::vector<exec::VirtualTime> worker_wait_ns;
    /// Keyed by SpanKind code (0xFF = outside any span).
    std::map<std::uint8_t, PhaseAgg> phases;
    /// Keyed by line id ((ordinal << 20) | line-in-range).
    std::map<std::uint64_t, std::uint64_t> line_misses;
  };

  std::uint32_t StructureId(const char* name);
  StructureStats& Stats(std::uint32_t structure);
  std::uint8_t CurrentPhase(int worker) const;
  void RecordSample(int worker);

  int num_workers_;
  ProfilerConfig config_;
  /// Ranges keyed by base address (non-overlapping by construction).
  std::map<std::uintptr_t, Range> ranges_;
  /// Structure id -> name; id 0 is the "(unregistered)" bucket.
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> name_ids_;
  std::vector<std::uint32_t> next_ordinal_;  ///< per structure
  std::vector<StructureStats> stats_;        ///< parallel to names_
  std::vector<std::vector<std::uint8_t>> frames_;  ///< per worker
  std::vector<exec::VirtualTime> next_sample_;     ///< per worker
  std::map<std::vector<std::uint8_t>, std::uint64_t> folded_;
  std::uint64_t total_samples_ = 0;
  exec::VirtualTime total_lock_wait_ns_ = 0;
};

}  // namespace sparta::obs

#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>

namespace sparta::obs {
namespace {

// Fixed-point ns → µs: "12.345". Byte-stable (no doubles).
void AppendMicros(std::string& out, exec::VirtualTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void AppendMetadata(std::string& out, const char* what, int tid,
                    const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":1,\"tid\":";
  AppendU64(out, static_cast<std::uint64_t>(tid));
  out += ",\"args\":{\"name\":\"" + name + "\"}}";
}

std::string TrackName(const Tracer& tracer, int t) {
  if (t == tracer.scheduler_track()) return "scheduler";
  if (t == tracer.serving_track()) return "serving";
  return "worker " + std::to_string(t);
}

void AppendEvent(std::string& out, const TraceEvent& e, int tid) {
  if (e.is_instant) {
    const InstantKind kind = e.instant_kind();
    out += "{\"name\":\"";
    out += InstantKindName(kind);
    out += "\",\"cat\":\"sparta\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    AppendMicros(out, e.begin);
    out += ",\"pid\":1,\"tid\":";
    AppendU64(out, static_cast<std::uint64_t>(tid));
    out += ",\"args\":{\"";
    out += InstantArgName(kind, 0);
    out += "\":";
    AppendU64(out, e.a);
    out += ",\"";
    out += InstantArgName(kind, 1);
    out += "\":";
    AppendU64(out, e.b);
    out += "}}";
    return;
  }
  const SpanKind kind = e.span_kind();
  out += "{\"name\":\"";
  out += SpanKindName(kind);
  out += "\",\"cat\":\"sparta\",\"ph\":\"X\",\"ts\":";
  AppendMicros(out, e.begin);
  out += ",\"dur\":";
  AppendMicros(out, e.end - e.begin);
  out += ",\"pid\":1,\"tid\":";
  AppendU64(out, static_cast<std::uint64_t>(tid));
  out += ",\"args\":{\"";
  out += SpanArgName(kind, 0);
  out += "\":";
  AppendU64(out, e.a);
  out += ",\"";
  out += SpanArgName(kind, 1);
  out += "\":";
  AppendU64(out, e.b);
  out += "}}";
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  std::string out;
  out.reserve(256 + tracer.total_events() * 144);
  out += "[\n";
  AppendMetadata(out, "process_name", 0, "sparta");
  for (int t = 0; t < tracer.num_tracks(); ++t) {
    out += ",\n";
    AppendMetadata(out, "thread_name", t, TrackName(tracer, t));
  }
  for (int t = 0; t < tracer.num_tracks(); ++t) {
    for (const TraceEvent& e : tracer.track(t)) {
      out += ",\n";
      AppendEvent(out, e, t);
    }
  }
  out += "\n]\n";
  return out;
}

std::string ExportPostmortem(const Postmortem& pm) {
  std::string out;
  out.reserve(1024 + pm.state.size() * 64);
  out += "{\n\"schema\":1,\n\"anomaly\":\"";
  out += AnomalyKindName(pm.kind);
  out += "\",\n\"at_us\":";
  AppendMicros(out, pm.at);
  out += ",\n\"ordinal\":";
  AppendU64(out, pm.ordinal);
  out += ",\n\"a\":";
  AppendU64(out, pm.a);
  out += ",\n\"b\":";
  AppendU64(out, pm.b);
  out += ",\n\"state\":[";
  for (std::size_t i = 0; i < pm.state.size(); ++i) {
    out += i == 0 ? "\n\"" : ",\n\"";
    out += pm.state[i];
    out += "\"";
  }
  out += "\n],\n\"metrics\":{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : pm.metrics.counters) {
    out += first ? "\n\"" : ",\n\"";
    first = false;
    out += name + "\":";
    AppendU64(out, value);
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, value] : pm.metrics.gauges) {
    out += first ? "\n\"" : ",\n\"";
    first = false;
    out += name + "\":" + std::to_string(value);
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, s] : pm.metrics.histograms) {
    out += first ? "\n\"" : ",\n\"";
    first = false;
    out += name + "\":{\"count\":";
    AppendU64(out, s.count);
    char mean[40];
    std::snprintf(mean, sizeof(mean), "%.9g", s.mean);
    out += ",\"mean\":";
    out += mean;
    out += ",\"min\":" + std::to_string(s.min);
    out += ",\"max\":" + std::to_string(s.max);
    out += ",\"p50\":" + std::to_string(s.p50);
    out += ",\"p99\":" + std::to_string(s.p99);
    out += ",\"p999\":" + std::to_string(s.p999);
    out += "}";
  }
  out += "\n}\n},\n\"tracks\":[";
  for (std::size_t t = 0; t < pm.tracks.size(); ++t) {
    out += t == 0 ? "\n" : ",\n";
    out += "{\"id\":";
    AppendU64(out, t);
    out += ",\"events\":[";
    for (std::size_t i = 0; i < pm.tracks[t].size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      AppendEvent(out, pm.tracks[t][i], static_cast<int>(t));
    }
    out += "\n]}";
  }
  out += "\n]\n}\n";
  return out;
}

std::vector<AttributionRow> ComputeAttribution(const Tracer& tracer) {
  constexpr int kNumKinds = static_cast<int>(SpanKind::kShardService) + 1;
  std::uint64_t count[kNumKinds] = {};
  exec::VirtualTime total[kNumKinds] = {};
  exec::VirtualTime self[kNumKinds] = {};

  for (int t = 0; t < tracer.num_workers(); ++t) {
    std::vector<TraceEvent> spans;
    for (const TraceEvent& e : tracer.track(t)) {
      if (!e.is_instant) spans.push_back(e);
    }
    // Parents sort before their children: begin ascending, then end
    // descending (RAII on a monotone per-worker clock guarantees proper
    // containment, never partial overlap).
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent& x, const TraceEvent& y) {
                if (x.begin != y.begin) return x.begin < y.begin;
                return x.end > y.end;
              });
    struct Frame {
      int kind;
      exec::VirtualTime begin;
      exec::VirtualTime end;
      exec::VirtualTime child = 0;  ///< Σ durations of direct children.
    };
    std::vector<Frame> st;
    auto close = [&](const Frame& f) {
      self[f.kind] += (f.end - f.begin) - f.child;
      if (!st.empty()) st.back().child += f.end - f.begin;
    };
    for (const TraceEvent& e : spans) {
      while (!st.empty() && st.back().end <= e.begin) {
        const Frame f = st.back();
        st.pop_back();
        close(f);
      }
      const int k = static_cast<int>(e.span_kind());
      ++count[k];
      total[k] += e.end - e.begin;
      st.push_back({k, e.begin, e.end, 0});
    }
    while (!st.empty()) {
      const Frame f = st.back();
      st.pop_back();
      close(f);
    }
  }

  std::vector<AttributionRow> rows;
  for (int k = 0; k < kNumKinds; ++k) {
    if (count[k] == 0) continue;
    rows.push_back({static_cast<SpanKind>(k), count[k], total[k], self[k]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const AttributionRow& x, const AttributionRow& y) {
              if (x.self != y.self) return x.self > y.self;
              return static_cast<int>(x.kind) < static_cast<int>(y.kind);
            });
  return rows;
}

}  // namespace sparta::obs

#include "obs/flight_recorder.h"

namespace sparta::obs {

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kShardsDegraded:
      return "shards.degraded";
    case AnomalyKind::kPartialAfterFault:
      return "partial.after.fault";
    case AnomalyKind::kOom:
      return "oom";
    case AnomalyKind::kBreakerOpen:
      return "breaker.open";
    case AnomalyKind::kNodeCrash:
      return "node.crash";
    case AnomalyKind::kSloBreach:
      return "slo.breach";
  }
  return "anomaly";
}

FlightRecorder::FlightRecorder(int num_workers, FlightRecorderConfig config)
    : num_workers_(num_workers), config_(config) {
  SPARTA_CHECK(num_workers >= 1);
  SPARTA_CHECK(config_.ring_capacity >= 1);
  rings_.resize(static_cast<std::size_t>(num_tracks()));
}

void FlightRecorder::Append(int track, const TraceEvent& e) {
  Ring& ring = rings_[static_cast<std::size_t>(track)];
  if (ring.buf.size() < config_.ring_capacity) {
    ring.buf.push_back(e);
  } else {
    ring.buf[ring.next] = e;
    ring.next = (ring.next + 1) % config_.ring_capacity;
    ++evicted_;
  }
  ++ring.written;
  ++recorded_;
}

void FlightRecorder::AddSpan(int track, SpanKind kind,
                             exec::VirtualTime begin, exec::VirtualTime end,
                             std::uint64_t a, std::uint64_t b) {
  SPARTA_CHECK(track >= 0 && track < num_tracks());
  SPARTA_CHECK(end >= begin);
  if (!RecordsSpan(kind)) return;
  const util::MutexLock guard(mutex_);
  Append(track, {begin, end, a, b, static_cast<std::uint8_t>(kind), false});
}

void FlightRecorder::AddInstant(int track, InstantKind kind,
                                exec::VirtualTime ts, std::uint64_t a,
                                std::uint64_t b) {
  SPARTA_CHECK(track >= 0 && track < num_tracks());
  const util::MutexLock guard(mutex_);
  Append(track, {ts, ts, a, b, static_cast<std::uint8_t>(kind), true});
}

std::vector<TraceEvent> FlightRecorder::SnapshotLocked(int track) const {
  const Ring& ring = rings_[static_cast<std::size_t>(track)];
  std::vector<TraceEvent> out;
  out.reserve(ring.buf.size());
  if (ring.buf.size() < config_.ring_capacity) {
    out = ring.buf;
    return out;
  }
  for (std::size_t i = 0; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[(ring.next + i) % ring.buf.size()]);
  }
  return out;
}

Postmortem* FlightRecorder::Trigger(AnomalyKind kind, exec::VirtualTime at,
                                    std::uint64_t a, std::uint64_t b) {
  const util::MutexLock guard(mutex_);
  ++anomalies_;
  if (postmortems_.size() >= config_.max_postmortems) return nullptr;
  auto pm = std::make_unique<Postmortem>();
  pm->kind = kind;
  pm->at = at;
  pm->a = a;
  pm->b = b;
  pm->ordinal = anomalies_;
  pm->tracks.reserve(static_cast<std::size_t>(num_tracks()));
  for (int t = 0; t < num_tracks(); ++t) {
    pm->tracks.push_back(SnapshotLocked(t));
  }
  postmortems_.push_back(std::move(pm));
  return postmortems_.back().get();
}

std::uint64_t FlightRecorder::events_recorded() const {
  const util::MutexLock guard(mutex_);
  return recorded_;
}

std::uint64_t FlightRecorder::events_evicted() const {
  const util::MutexLock guard(mutex_);
  return evicted_;
}

std::uint64_t FlightRecorder::anomalies() const {
  const util::MutexLock guard(mutex_);
  return anomalies_;
}

std::vector<TraceEvent> FlightRecorder::TrackSnapshot(int track) const {
  SPARTA_CHECK(track >= 0 && track < num_tracks());
  const util::MutexLock guard(mutex_);
  return SnapshotLocked(track);
}

void FlightRecorder::Clear() {
  const util::MutexLock guard(mutex_);
  for (Ring& r : rings_) {
    r.buf.clear();
    r.next = 0;
    r.written = 0;
  }
  recorded_ = evicted_ = anomalies_ = 0;
  postmortems_.clear();
}

}  // namespace sparta::obs

// Windowed health series: metrics with a time axis.
//
// The metrics registry (obs/metrics.h) is a timeless snapshot — good
// for "how many", useless for "when did it start". A TimeSeries buckets
// named counters, last-write-wins levels and latency-sample histograms
// by virtual second (configurable), which is what the serving layer's
// SLO monitor (serve/slo_monitor.h) computes rolling burn rates over
// and what the overload/fault benches export for plotting
// (tools/plot_results.py).
//
// Everything is deterministic: series are keyed by name in sorted maps,
// buckets are pure functions of virtual time, and ToCsv() renders with
// fixed-point formatting only — the same run emits the same bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/context.h"
#include "util/histogram.h"

namespace sparta::obs {

struct TimeSeriesConfig {
  /// Bucket width; defaults to one virtual second.
  exec::VirtualTime bucket_ns = 1'000'000'000;
};

class TimeSeries {
 public:
  explicit TimeSeries(TimeSeriesConfig config = {});

  exec::VirtualTime bucket_ns() const { return config_.bucket_ns; }
  std::size_t BucketOf(exec::VirtualTime at) const {
    return at <= 0 ? 0
                   : static_cast<std::size_t>(at / config_.bucket_ns);
  }

  /// Adds `delta` to counter `series` in the bucket containing `at`.
  void AddCount(const std::string& series, exec::VirtualTime at,
                std::uint64_t delta = 1);
  /// Adds one sample to histogram series `series` (latencies, sizes).
  void AddSample(const std::string& series, exec::VirtualTime at,
                 std::int64_t sample);
  /// Sets level series `series` for the bucket containing `at`;
  /// the last write in a bucket wins, and Level() carries the value
  /// forward through buckets with no write (breaker state, burn rate).
  void SetLevel(const std::string& series, exec::VirtualTime at,
                std::int64_t value);

  /// Highest touched bucket index + 1 (0 when nothing was recorded).
  std::size_t num_buckets() const { return num_buckets_; }

  std::uint64_t Count(const std::string& series, std::size_t bucket) const;
  std::uint64_t TotalCount(const std::string& series) const;
  /// Carry-forward level at `bucket`; 0 before the first write.
  std::int64_t Level(const std::string& series, std::size_t bucket) const;
  std::int64_t MaxLevel(const std::string& series) const;
  /// Sample histogram of one bucket, or nullptr when the series has no
  /// samples there.
  const util::Histogram* Samples(const std::string& series,
                                 std::size_t bucket) const;

  /// Deterministic CSV: one row per bucket; counter and level columns
  /// verbatim, sample series as <name>_count/<name>_p50/<name>_p99
  /// (nanosecond values, rendered as fixed-point milliseconds).
  std::string ToCsv() const;

 private:
  struct Level_ {
    bool set = false;
    std::int64_t value = 0;
  };

  TimeSeriesConfig config_;
  std::size_t num_buckets_ = 0;
  std::map<std::string, std::vector<std::uint64_t>> counters_;
  std::map<std::string, std::vector<Level_>> levels_;
  std::map<std::string, std::vector<util::Histogram>> samples_;
};

}  // namespace sparta::obs

// Pull-based metrics registry: named counters, gauges and histograms
// with stable handles, snapshotted on demand.
//
// The registry subsumes the ad-hoc aggregate fields scattered across
// QueryStats and the serving layer: callers register (or look up) a
// metric by name once, hold the returned reference, and update it from
// a single thread (the serving loop; metric bodies are plain ints, not
// atomics — see DESIGN.md §11); Snapshot() copies every metric by name
// under the registry lock. Handles returned by GetCounter/GetGauge/
// GetHistogram are valid for the registry's lifetime (std::map nodes
// never move).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::obs {

class Tracer;

/// Monotone event count.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (queue depth, in-flight queries, rung index).
class Gauge {
 public:
  void Set(std::int64_t v) { value_ = v; }
  void Add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Summary of a histogram at snapshot time. p999 needs >= 1000 samples
/// to be distinct from max (util/histogram nearest-rank semantics).
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
};

/// Consistent by-name copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  util::Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  /// Guards the name->metric maps only; the metric objects themselves
  /// are updated through the returned references by single-threaded
  /// updaters (see the Counter/Gauge comments above).
  mutable util::Mutex mutex_;
  std::map<std::string, Counter> counters_ SPARTA_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ SPARTA_GUARDED_BY(mutex_);
  std::map<std::string, util::Histogram> histograms_
      SPARTA_GUARDED_BY(mutex_);
};

/// Folds a finished trace into the registry: one
/// `trace.spans.<kind>` counter per span kind present, one
/// `trace.instants.<kind>` counter per instant kind, and
/// `trace.span_ns.<kind>` histograms of span durations.
void AccumulateTraceMetrics(const Tracer& tracer, MetricsRegistry& registry);

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters
/// and gauges as single samples, histograms as summaries (quantile
/// labels plus _sum/_count). Metric names are sanitized to
/// [a-zA-Z0-9_:] ('.' becomes '_'); output is deterministic (sorted by
/// name, fixed float formatting).
std::string TextFormat(const MetricsSnapshot& snapshot);

}  // namespace sparta::obs

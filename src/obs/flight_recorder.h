// Always-on flight recorder: the black box a production cluster lands
// with.
//
// Tracing (obs/trace.h) is opt-in per run and unbounded — great for a
// lab, wrong for a fleet. The flight recorder is the complement: a
// bounded per-track ring of the most recent spans/instants, cheap
// enough to leave on under full traffic, plus *anomaly triggers* that
// freeze the rings the instant something goes wrong (a degraded
// result, a breaker opening, a node crash, an SLO burn-rate breach)
// into a postmortem capture: the recent events, a metrics snapshot and
// the component state lines the triggering layer attaches. The capture
// is exported as byte-deterministic JSON by ExportPostmortem
// (obs/trace_export.h), so the same seed dumps the same bytes.
//
// Determinism contract (tests/test_obs.cpp, tests/test_cluster.cpp):
// recorder-off is the default and every emission site reduces to a
// null-pointer check — recorder-off runs are bit-identical to builds
// without this layer. Recorder-on emission from *machine* contexts
// charges a small modeled cost per event (`record_cost_ns`), so the
// recorder's overhead is an honest, measurable part of virtual latency
// (bench/bench_obs_overhead.cpp proves it stays < 5% at w8);
// coordinator-side emission is off the machine clock and charges
// nothing. Ring layout mirrors obs::Tracer: tracks 0..W-1 are workers
// (nodes, in a cluster recorder), W the scheduler, W+1 the serving
// layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::obs {

/// Default FlightRecorderConfig::span_mask: every kind except the
/// per-page / per-access / per-acquisition micro-spans. A production
/// black box keeps operation-level history; recording every kIoRead
/// would both flood a 256-event ring in microseconds of history and
/// make the modeled per-event cost dominate query latency (the <5%
/// always-on budget of bench/bench_obs_overhead.cpp).
constexpr std::uint32_t kFlightDefaultSpanMask =
    ~((1u << static_cast<int>(SpanKind::kPostingsScan)) |
      (1u << static_cast<int>(SpanKind::kDocMapAccess)) |
      (1u << static_cast<int>(SpanKind::kHeapUpdate)) |
      (1u << static_cast<int>(SpanKind::kIoRead)) |
      (1u << static_cast<int>(SpanKind::kLockWait)));

/// Runtime knob, carried by sim::SimConfig (machine recorder) and
/// serve::ClusterConfig (cluster recorder). Off by default everywhere.
struct FlightRecorderConfig {
  bool enabled = false;
  /// Events retained per track; older events are evicted FIFO.
  std::size_t ring_capacity = 256;
  /// Postmortem captures kept (the first N triggers); later triggers
  /// still count in anomalies() but capture nothing.
  std::size_t max_postmortems = 8;
  /// Modeled per-event recording cost charged to the emitting machine
  /// worker (coordinator-side emission charges nothing).
  exec::VirtualTime record_cost_ns = 25;
  /// Bit per SpanKind; masked-out kinds are neither appended nor
  /// charged (instants are always recorded — they are rare by nature).
  std::uint32_t span_mask = kFlightDefaultSpanMask;
};

/// What tripped a postmortem capture. Append-only (codes are stamped
/// into exported dumps).
enum class AnomalyKind : std::uint8_t {
  kShardsDegraded,    ///< merged result lost at least one shard
  kPartialAfterFault, ///< result degraded by an escalated fault
  kOom,               ///< result aborted on the memory budget
  kBreakerOpen,       ///< a circuit breaker tripped open
  kNodeCrash,         ///< a node fail-stopped
  kSloBreach,         ///< windowed SLO burn rate crossed the alert line
};

const char* AnomalyKindName(AnomalyKind kind);

/// One frozen capture: the trigger, the rings at trigger time, and
/// whatever state/metrics the triggering layer attached before export.
struct Postmortem {
  AnomalyKind kind = AnomalyKind::kShardsDegraded;
  exec::VirtualTime at = 0;
  /// Kind-specific payloads (record/shard, node id, burn per-mille...).
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// 1-based trigger count at capture time (dumps are ordered).
  std::uint64_t ordinal = 0;
  /// Ring contents per track, oldest → newest.
  std::vector<std::vector<TraceEvent>> tracks;
  /// Component state lines attached by the trigger site ("shard=0
  /// replica=1 node=1 breaker=open reachable=0"), deterministic order.
  std::vector<std::string> state;
  /// Metrics at trigger time.
  MetricsSnapshot metrics;
};

/// Bounded event sink with the Tracer's track layout and API shape.
/// Thread-safe for the same reason the Tracer is (threaded-executor
/// workers could emit concurrently); the simulator and the coordinator
/// pay one uncontended mutex per event.
class FlightRecorder {
 public:
  explicit FlightRecorder(int num_workers,
                          FlightRecorderConfig config = {.enabled = true});

  int num_workers() const { return num_workers_; }
  int num_tracks() const { return num_workers_ + 2; }
  int scheduler_track() const { return num_workers_; }
  int serving_track() const { return num_workers_ + 1; }

  exec::VirtualTime record_cost() const { return config_.record_cost_ns; }

  /// True when `kind` passes the configured span mask. Emission sites
  /// skip both the append and the record_cost() charge for masked
  /// kinds (AddSpan also drops them, so the ring never holds one).
  bool RecordsSpan(SpanKind kind) const {
    return ((config_.span_mask >> static_cast<int>(kind)) & 1u) != 0u;
  }

  void AddSpan(int track, SpanKind kind, exec::VirtualTime begin,
               exec::VirtualTime end, std::uint64_t a = 0,
               std::uint64_t b = 0);
  void AddInstant(int track, InstantKind kind, exec::VirtualTime ts,
                  std::uint64_t a = 0, std::uint64_t b = 0);

  /// Anomaly trigger. Always counts; captures and returns a Postmortem
  /// (rings frozen, state/metrics left for the caller to fill) while
  /// fewer than max_postmortems captures exist, else returns nullptr.
  /// The returned pointer stays valid for the recorder's lifetime.
  Postmortem* Trigger(AnomalyKind kind, exec::VirtualTime at,
                      std::uint64_t a = 0, std::uint64_t b = 0);

  std::uint64_t events_recorded() const;
  std::uint64_t events_evicted() const;
  std::uint64_t anomalies() const;
  const std::vector<std::unique_ptr<Postmortem>>& postmortems() const {
    return postmortems_;
  }

  /// One track's retained events, oldest → newest.
  std::vector<TraceEvent> TrackSnapshot(int track) const;

  void Clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  ///< capacity-sized once full
    std::size_t next = 0;         ///< write cursor once wrapped
    std::uint64_t written = 0;
  };

  void Append(int track, const TraceEvent& e) SPARTA_REQUIRES(mutex_);
  std::vector<TraceEvent> SnapshotLocked(int track) const
      SPARTA_REQUIRES(mutex_);

  int num_workers_;
  FlightRecorderConfig config_;
  mutable util::Mutex mutex_;
  std::vector<Ring> rings_ SPARTA_GUARDED_BY(mutex_);
  std::uint64_t recorded_ SPARTA_GUARDED_BY(mutex_) = 0;
  std::uint64_t evicted_ SPARTA_GUARDED_BY(mutex_) = 0;
  std::uint64_t anomalies_ SPARTA_GUARDED_BY(mutex_) = 0;
  /// unique_ptrs so Trigger's returned pointers survive vector growth.
  std::vector<std::unique_ptr<Postmortem>> postmortems_;
};

}  // namespace sparta::obs

// Chrome trace-event JSON export and per-phase latency attribution.
//
// ExportChromeTrace emits the classic trace-event array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// loadable in chrome://tracing and ui.perfetto.dev: "X" complete events
// for spans, "i" instant events, "M" metadata naming the tracks.
// Virtual-time nanoseconds are printed as fixed-point microseconds
// (integer µs + 3 decimal digits) — no floating-point formatting — so
// the export is byte-stable across runs and platforms.
#pragma once

#include <string>
#include <vector>

#include "exec/context.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace sparta::obs {

std::string ExportChromeTrace(const Tracer& tracer);

/// Renders one flight-recorder capture as JSON: the anomaly trigger,
/// the caller-attached state lines and metrics snapshot, and the frozen
/// ring contents per track (oldest → newest, same event rendering as
/// the Chrome export). Deterministic byte-for-byte: sorted metric maps,
/// fixed-point time formatting, no addresses anywhere — the same seed
/// dumps the same bytes (tests/test_cluster.cpp golden test).
std::string ExportPostmortem(const Postmortem& pm);

/// One row of the where-the-time-goes table, aggregated over all worker
/// tracks. `total` sums span durations; `self` subtracts the durations
/// of directly nested child spans, so Σ self over kinds ≤ Σ job time and
/// a kind's self time is honest exclusive attribution.
struct AttributionRow {
  SpanKind kind = SpanKind::kJob;
  std::uint64_t count = 0;
  exec::VirtualTime total = 0;
  exec::VirtualTime self = 0;
};

/// Computes exclusive/inclusive time per span kind from the worker
/// tracks (scheduler/serving tracks are wait time, not work, and are
/// excluded). Rows sorted by self time descending.
std::vector<AttributionRow> ComputeAttribution(const Tracer& tracer);

}  // namespace sparta::obs

// Exports of the virtual-time sampling profiler: folded stacks in the
// FlameGraph / speedscope "collapsed" format and a per-phase self-time
// table. All outputs are byte-stable for equal profiles (lines sorted,
// fixed number formatting) so per-seed goldens can be committed.
#pragma once

#include <string>
#include <vector>

#include "obs/profiler.h"

namespace sparta::obs {

/// One row of the per-phase self-time table: samples whose *innermost*
/// live span was `kind`. Self time is samples * sample_period.
struct SelfTimeRow {
  SpanKind kind = SpanKind::kJob;
  bool outside = false;  ///< sample hit outside any span
  std::uint64_t samples = 0;
  exec::VirtualTime self_ns = 0;
  double share = 0.0;  ///< of total samples

  const char* name() const {
    return outside ? "(none)" : SpanKindName(kind);
  }
};

/// Folded stacks, one per line: "job;postings.scan;io.read 42\n",
/// sorted lexicographically. Feed to flamegraph.pl or speedscope.
std::string ExportFolded(const Profiler& profiler);

/// Per-phase self-time rows, sorted by samples descending (ties by
/// name).
std::vector<SelfTimeRow> SelfTimeTable(const Profiler& profiler);

/// Renders the self-time table as fixed-width text.
std::string RenderSelfTimeTable(const std::vector<SelfTimeRow>& rows);

}  // namespace sparta::obs

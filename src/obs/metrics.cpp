#include "obs/metrics.h"

#include <cstdio>
#include <string>

#include "obs/trace.h"

namespace sparta::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const util::MutexLock guard(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const util::MutexLock guard(mutex_);
  return gauges_[name];
}

util::Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  const util::MutexLock guard(mutex_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const util::MutexLock guard(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.count = h.count();
    if (!h.empty()) {
      s.mean = h.Mean();
      s.min = h.Min();
      s.max = h.Max();
      s.p50 = h.Percentile(50.0);
      s.p99 = h.P99();
      s.p999 = h.P999();
    }
    snap.histograms[name] = s;
  }
  return snap;
}

namespace {

std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  // Prometheus names must not start with a digit.
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string TextFormat(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    const std::string n = Sanitize(name);
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + std::to_string(summary.p50) + "\n";
    out += n + "{quantile=\"0.99\"} " + std::to_string(summary.p99) + "\n";
    out += n + "{quantile=\"0.999\"} " + std::to_string(summary.p999) +
           "\n";
    out += n + "_sum " +
           FormatDouble(summary.mean *
                        static_cast<double>(summary.count)) +
           "\n";
    out += n + "_count " + std::to_string(summary.count) + "\n";
  }
  return out;
}

void AccumulateTraceMetrics(const Tracer& tracer, MetricsRegistry& registry) {
  for (int t = 0; t < tracer.num_tracks(); ++t) {
    for (const TraceEvent& e : tracer.track(t)) {
      if (e.is_instant) {
        registry
            .GetCounter(std::string("trace.instants.") +
                        InstantKindName(e.instant_kind()))
            .Add();
      } else {
        const char* name = SpanKindName(e.span_kind());
        registry.GetCounter(std::string("trace.spans.") + name).Add();
        registry.GetHistogram(std::string("trace.span_ns.") + name)
            .Add(e.end - e.begin);
      }
    }
  }
}

}  // namespace sparta::obs

#include "obs/metrics.h"

#include <string>

#include "obs/trace.h"

namespace sparta::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mutex_);
  return gauges_[name];
}

util::Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mutex_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.count = h.count();
    if (!h.empty()) {
      s.mean = h.Mean();
      s.min = h.Min();
      s.max = h.Max();
      s.p50 = h.Percentile(50.0);
      s.p99 = h.P99();
    }
    snap.histograms[name] = s;
  }
  return snap;
}

void AccumulateTraceMetrics(const Tracer& tracer, MetricsRegistry& registry) {
  for (int t = 0; t < tracer.num_tracks(); ++t) {
    for (const TraceEvent& e : tracer.track(t)) {
      if (e.is_instant) {
        registry
            .GetCounter(std::string("trace.instants.") +
                        InstantKindName(e.instant_kind()))
            .Add();
      } else {
        const char* name = SpanKindName(e.span_kind());
        registry.GetCounter(std::string("trace.spans.") + name).Add();
        registry.GetHistogram(std::string("trace.span_ns.") + name)
            .Add(e.end - e.begin);
      }
    }
  }
}

}  // namespace sparta::obs

#include "obs/timeseries.h"

#include <cstdio>

#include "util/common.h"

namespace sparta::obs {
namespace {

// Fixed-point ns → ms with 3 decimals ("12.345"); byte-stable.
void AppendMillis(std::string& out, exec::VirtualTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1'000'000),
                static_cast<long long>((ns / 1000) % 1000));
  out += buf;
}

template <typename T>
void Grow(std::vector<T>& v, std::size_t bucket) {
  if (v.size() <= bucket) v.resize(bucket + 1);
}

}  // namespace

TimeSeries::TimeSeries(TimeSeriesConfig config) : config_(config) {
  SPARTA_CHECK(config_.bucket_ns > 0);
}

void TimeSeries::AddCount(const std::string& series, exec::VirtualTime at,
                          std::uint64_t delta) {
  const std::size_t b = BucketOf(at);
  auto& v = counters_[series];
  Grow(v, b);
  v[b] += delta;
  num_buckets_ = std::max(num_buckets_, b + 1);
}

void TimeSeries::AddSample(const std::string& series, exec::VirtualTime at,
                           std::int64_t sample) {
  const std::size_t b = BucketOf(at);
  auto& v = samples_[series];
  Grow(v, b);
  v[b].Add(sample);
  num_buckets_ = std::max(num_buckets_, b + 1);
}

void TimeSeries::SetLevel(const std::string& series, exec::VirtualTime at,
                          std::int64_t value) {
  const std::size_t b = BucketOf(at);
  auto& v = levels_[series];
  Grow(v, b);
  v[b] = {true, value};
  num_buckets_ = std::max(num_buckets_, b + 1);
}

std::uint64_t TimeSeries::Count(const std::string& series,
                                std::size_t bucket) const {
  auto it = counters_.find(series);
  if (it == counters_.end() || bucket >= it->second.size()) return 0;
  return it->second[bucket];
}

std::uint64_t TimeSeries::TotalCount(const std::string& series) const {
  auto it = counters_.find(series);
  if (it == counters_.end()) return 0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : it->second) total += c;
  return total;
}

std::int64_t TimeSeries::Level(const std::string& series,
                               std::size_t bucket) const {
  auto it = levels_.find(series);
  if (it == levels_.end()) return 0;
  std::int64_t value = 0;
  const std::size_t limit = std::min(bucket + 1, it->second.size());
  for (std::size_t b = 0; b < limit; ++b) {
    if (it->second[b].set) value = it->second[b].value;
  }
  return value;
}

std::int64_t TimeSeries::MaxLevel(const std::string& series) const {
  auto it = levels_.find(series);
  if (it == levels_.end()) return 0;
  std::int64_t best = 0;
  for (const Level_& l : it->second) {
    if (l.set && l.value > best) best = l.value;
  }
  return best;
}

const util::Histogram* TimeSeries::Samples(const std::string& series,
                                           std::size_t bucket) const {
  auto it = samples_.find(series);
  if (it == samples_.end() || bucket >= it->second.size()) return nullptr;
  const util::Histogram& h = it->second[bucket];
  return h.empty() ? nullptr : &h;
}

std::string TimeSeries::ToCsv() const {
  std::string out = "bucket,start_ms";
  for (const auto& [name, v] : counters_) out += "," + name;
  for (const auto& [name, v] : levels_) out += "," + name;
  for (const auto& [name, v] : samples_) {
    out += "," + name + "_count," + name + "_p50_ms," + name + "_p99_ms";
  }
  out += "\n";
  for (std::size_t b = 0; b < num_buckets_; ++b) {
    out += std::to_string(b) + ",";
    AppendMillis(out, static_cast<exec::VirtualTime>(b) * config_.bucket_ns);
    for (const auto& [name, v] : counters_) {
      out += "," + std::to_string(b < v.size() ? v[b] : 0);
    }
    for (const auto& [name, v] : levels_) {
      out += "," + std::to_string(Level(name, b));
    }
    for (const auto& [name, v] : samples_) {
      const util::Histogram* h = Samples(name, b);
      out += "," + std::to_string(h != nullptr ? h->count() : 0) + ",";
      AppendMillis(out, h != nullptr ? h->Percentile(50.0) : 0);
      out += ",";
      AppendMillis(out, h != nullptr ? h->P99() : 0);
    }
    out += "\n";
  }
  return out;
}

}  // namespace sparta::obs

#include "obs/profiler.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "util/common.h"

namespace sparta::obs {
namespace {

constexpr std::uint8_t kNoPhase = 0xFF;
/// Bits of a virtual line key reserved for the line-in-range index.
constexpr unsigned kLineBits = 20;

const char* PhaseName(std::uint8_t code) {
  return code == kNoPhase ? "(none)"
                          : SpanKindName(static_cast<SpanKind>(code));
}

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

double Ms(exec::VirtualTime ns) {
  return static_cast<double>(ns) / 1e6;
}

}  // namespace

Profiler::Profiler(int num_workers, ProfilerConfig config)
    : num_workers_(num_workers),
      config_(config),
      frames_(static_cast<std::size_t>(num_workers)),
      next_sample_(static_cast<std::size_t>(num_workers), 0) {
  SPARTA_CHECK(num_workers >= 1);
  SPARTA_CHECK(config_.sample_period >= 0);
  // Id 0 is the fallback bucket for events on unregistered addresses.
  names_.emplace_back("(unregistered)");
  name_ids_.emplace(names_.back(), 0);
  next_ordinal_.push_back(0);
  stats_.emplace_back();
}

std::uint32_t Profiler::StructureId(const char* name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  next_ordinal_.push_back(0);
  stats_.emplace_back();
  return id;
}

Profiler::StructureStats& Profiler::Stats(std::uint32_t structure) {
  auto& stats = stats_[structure];
  if (stats.worker_misses.empty()) {
    stats.worker_misses.assign(static_cast<std::size_t>(num_workers_), 0);
    stats.worker_wait_ns.assign(static_cast<std::size_t>(num_workers_), 0);
  }
  return stats;
}

void Profiler::RegisterRange(const void* addr, std::size_t bytes,
                             const char* structure) {
  SPARTA_CHECK(addr != nullptr && bytes > 0 && structure != nullptr);
  Range range;
  range.base = reinterpret_cast<std::uintptr_t>(addr);
  range.end = range.base + bytes;
  range.structure = StructureId(structure);
  range.ordinal = next_ordinal_[range.structure]++;
  const std::uintptr_t lines = (bytes - 1) >> 6;
  SPARTA_CHECK(lines < (1u << kLineBits));
  // Evict any range the new one overlaps: a recycled heap address must
  // never resolve to a structure from an earlier query.
  auto it = ranges_.lower_bound(range.base);
  if (it != ranges_.begin() && std::prev(it)->second.end > range.base) {
    --it;
  }
  while (it != ranges_.end() && it->second.base < range.end) {
    it = ranges_.erase(it);
  }
  ranges_.emplace(range.base, range);
}

void Profiler::ResetRanges() {
  ranges_.clear();
  std::fill(next_ordinal_.begin(), next_ordinal_.end(), 0);
}

Profiler::Resolution Profiler::Resolve(const void* addr) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  Resolution res;
  auto it = ranges_.upper_bound(a);
  if (it != ranges_.begin()) {
    const Range& range = std::prev(it)->second;
    if (a < range.end) {
      // Line identity is the byte offset within the range, /64 — i.e.
      // the range is treated as 64-byte aligned. The real base's
      // alignment within its cache line must not matter: it varies with
      // allocator state, and byte-identical reports across executor
      // instances are the whole point of the virtual key space.
      const auto line = static_cast<std::uint64_t>((a - range.base) >> 6);
      res.structure = range.structure;
      res.line_id =
          (static_cast<std::uint64_t>(range.ordinal) << kLineBits) | line;
      // Allocator-independent key: disjoint from the address-derived
      // fallback space via the top bit (addresses' bit 63 is never set
      // after the >> 6 of LineOf).
      res.line_key = (1ULL << 63) |
                     (static_cast<std::uint64_t>(res.structure) << 40) |
                     res.line_id;
      return res;
    }
  }
  res.line_key = static_cast<std::uint64_t>(a >> 6);
  return res;
}

void Profiler::OnSharedAccess(int worker, const Resolution& where,
                              exec::AccessKind kind, bool miss,
                              int copies_invalidated, bool remote) {
  if (!config_.contention) return;
  auto& stats = Stats(where.structure);
  if (kind == exec::AccessKind::kRead) {
    ++stats.reads;
    if (miss) ++stats.read_misses;
  } else {
    ++stats.writes;
    if (miss) ++stats.write_misses;
    stats.copies_invalidated +=
        static_cast<std::uint64_t>(copies_invalidated);
  }
  if (!miss) return;
  if (remote) ++stats.remote_misses;
  ++stats.worker_misses[static_cast<std::size_t>(worker)];
  ++stats.phases[CurrentPhase(worker)].misses;
  // Line identity is only meaningful for registered ranges; everything
  // unregistered collapses onto one pseudo-line.
  ++stats.line_misses[where.structure == 0 ? 0 : where.line_id];
}

void Profiler::OnLockAcquire(int worker, const void* lock, bool contended,
                             exec::VirtualTime wait_ns) {
  if (!config_.contention) return;
  auto& stats = Stats(Resolve(lock).structure);
  ++stats.lock_acquires;
  if (!contended) return;
  ++stats.lock_contended;
  stats.lock_wait_ns += wait_ns;
  stats.worker_wait_ns[static_cast<std::size_t>(worker)] += wait_ns;
  stats.phases[CurrentPhase(worker)].lock_wait_ns += wait_ns;
  total_lock_wait_ns_ += wait_ns;
}

std::uint8_t Profiler::CurrentPhase(int worker) const {
  const auto& stack = frames_[static_cast<std::size_t>(worker)];
  return stack.empty() ? kNoPhase : stack.back();
}

void Profiler::PushFrame(int worker, SpanKind kind) {
  frames_[static_cast<std::size_t>(worker)].push_back(
      static_cast<std::uint8_t>(kind));
}

void Profiler::PopFrame(int worker) {
  auto& stack = frames_[static_cast<std::size_t>(worker)];
  SPARTA_CHECK(!stack.empty());
  stack.pop_back();
}

void Profiler::RecordSample(int worker) {
  const auto& stack = frames_[static_cast<std::size_t>(worker)];
  if (stack.empty()) {
    static const std::vector<std::uint8_t> kOutside{kNoPhase};
    ++folded_[kOutside];
  } else {
    ++folded_[stack];
  }
  ++total_samples_;
}

void Profiler::OnAdvance(int worker, exec::VirtualTime before,
                         exec::VirtualTime after) {
  const exec::VirtualTime period = config_.sample_period;
  if (period <= 0) return;
  auto& next = next_sample_[static_cast<std::size_t>(worker)];
  // Uncharged gaps (queue waits, dispatch, barriers) move the clock
  // without passing through here; fast-forward past them instead of
  // back-filling samples for time the worker did not spend working.
  if (next <= before) next = (before / period + 1) * period;
  while (next <= after) {
    RecordSample(worker);
    next += period;
  }
}

ContentionReport Profiler::ContentionSnapshot() const {
  ContentionReport report;
  // Sorted by name: name_ids_ is an ordered map.
  for (const auto& [name, id] : name_ids_) {
    const StructureStats& stats = stats_[id];
    const bool touched =
        stats.reads + stats.writes + stats.lock_acquires > 0;
    // The fallback bucket appears only when something actually landed in
    // it; registered-but-idle structures keep their zero row (the row
    // proves the registration is wired).
    if (id == 0 && !touched) continue;
    ContentionStructureRow row;
    row.name = name;
    row.reads = stats.reads;
    row.writes = stats.writes;
    row.read_misses = stats.read_misses;
    row.write_misses = stats.write_misses;
    row.remote_misses = stats.remote_misses;
    row.copies_invalidated = stats.copies_invalidated;
    row.lock_acquires = stats.lock_acquires;
    row.lock_contended = stats.lock_contended;
    row.lock_wait_ns = stats.lock_wait_ns;
    row.worker_misses = stats.worker_misses;
    row.worker_wait_ns = stats.worker_wait_ns;
    if (row.worker_misses.empty()) {
      row.worker_misses.assign(static_cast<std::size_t>(num_workers_), 0);
      row.worker_wait_ns.assign(static_cast<std::size_t>(num_workers_), 0);
    }
    for (const auto& [phase, agg] : stats.phases) {
      row.phases.push_back({PhaseName(phase), agg.misses,
                            agg.lock_wait_ns});
    }
    std::sort(row.phases.begin(), row.phases.end(),
              [](const ContentionPhaseRow& a, const ContentionPhaseRow& b) {
                return a.phase < b.phase;
              });
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lines(
        stats.line_misses.begin(), stats.line_misses.end());
    std::sort(lines.begin(), lines.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (lines.size() > 8) lines.resize(8);
    for (const auto& [line_id, misses] : lines) {
      char label[96];
      std::snprintf(label, sizeof(label), "%s#%u+0x%llx", name.c_str(),
                    static_cast<unsigned>(line_id >> kLineBits),
                    static_cast<unsigned long long>(
                        (line_id & ((1u << kLineBits) - 1)) * 64));
      row.hot_lines.push_back({label, misses});
    }
    report.total_misses += row.misses();
    report.total_lock_wait_ns += row.lock_wait_ns;
    report.structures.push_back(std::move(row));
  }
  return report;
}

std::string RenderContentionReport(const ContentionReport& report,
                                   const std::string& title) {
  std::string out;
  Append(out, "== contention: %s ==\n", title.c_str());
  Append(out, "%-18s %9s %9s %9s %9s %8s %8s %8s %8s %11s\n", "structure",
         "reads", "writes", "rd.miss", "wr.miss", "rm.miss", "inval",
         "lk.acq", "lk.cont", "lk.wait.ms");
  for (const auto& row : report.structures) {
    Append(out,
           "%-18s %9llu %9llu %9llu %9llu %8llu %8llu %8llu %8llu %11.3f\n",
           row.name.c_str(), static_cast<unsigned long long>(row.reads),
           static_cast<unsigned long long>(row.writes),
           static_cast<unsigned long long>(row.read_misses),
           static_cast<unsigned long long>(row.write_misses),
           static_cast<unsigned long long>(row.remote_misses),
           static_cast<unsigned long long>(row.copies_invalidated),
           static_cast<unsigned long long>(row.lock_acquires),
           static_cast<unsigned long long>(row.lock_contended),
           Ms(row.lock_wait_ns));
  }
  Append(out, "total misses %llu, total lock wait %.3f ms\n",
         static_cast<unsigned long long>(report.total_misses),
         Ms(report.total_lock_wait_ns));

  out += "\nhottest lines:\n";
  for (const auto& row : report.structures) {
    for (const auto& line : row.hot_lines) {
      Append(out, "  %-28s %9llu\n", line.line.c_str(),
             static_cast<unsigned long long>(line.misses));
    }
  }

  out += "\nper-phase attribution:\n";
  for (const auto& row : report.structures) {
    for (const auto& phase : row.phases) {
      Append(out, "  %-18s %-14s misses %9llu  lk.wait.ms %9.3f\n",
             row.name.c_str(), phase.phase.c_str(),
             static_cast<unsigned long long>(phase.misses),
             Ms(phase.lock_wait_ns));
    }
  }

  out += "\nper-worker misses / lock-wait ms:\n";
  for (const auto& row : report.structures) {
    if (row.misses() == 0 && row.lock_wait_ns == 0) continue;
    Append(out, "  %-18s", row.name.c_str());
    for (std::size_t w = 0; w < row.worker_misses.size(); ++w) {
      Append(out, " w%zu:%llu/%.3f", w,
             static_cast<unsigned long long>(row.worker_misses[w]),
             Ms(row.worker_wait_ns[w]));
    }
    out += "\n";
  }
  return out;
}

}  // namespace sparta::obs

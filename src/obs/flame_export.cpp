#include "obs/flame_export.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

namespace sparta::obs {
namespace {

constexpr std::uint8_t kOutside = 0xFF;

std::string FrameName(std::uint8_t code) {
  return code == kOutside ? "(none)"
                          : SpanKindName(static_cast<SpanKind>(code));
}

}  // namespace

std::string ExportFolded(const Profiler& profiler) {
  std::vector<std::string> lines;
  lines.reserve(profiler.folded_samples().size());
  for (const auto& [stack, count] : profiler.folded_samples()) {
    std::string line;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (i != 0) line += ';';
      line += FrameName(stack[i]);
    }
    line += ' ';
    line += std::to_string(count);
    line += '\n';
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) out += line;
  return out;
}

std::vector<SelfTimeRow> SelfTimeTable(const Profiler& profiler) {
  // Innermost frame of each folded stack owns its samples.
  std::map<std::uint8_t, std::uint64_t> by_leaf;
  for (const auto& [stack, count] : profiler.folded_samples()) {
    by_leaf[stack.back()] += count;
  }
  std::vector<SelfTimeRow> rows;
  rows.reserve(by_leaf.size());
  const auto total = profiler.total_samples();
  for (const auto& [code, samples] : by_leaf) {
    SelfTimeRow row;
    row.outside = code == kOutside;
    if (!row.outside) row.kind = static_cast<SpanKind>(code);
    row.samples = samples;
    row.self_ns = static_cast<exec::VirtualTime>(samples) *
                  profiler.sample_period();
    row.share = total > 0 ? static_cast<double>(samples) /
                                static_cast<double>(total)
                          : 0.0;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const SelfTimeRow& a, const SelfTimeRow& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return std::strcmp(a.name(), b.name()) < 0;
            });
  return rows;
}

std::string RenderSelfTimeTable(const std::vector<SelfTimeRow>& rows) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-16s %10s %12s %8s\n", "phase",
                "samples", "self_ms", "share");
  out += buf;
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-16s %10llu %12.3f %7.1f%%\n",
                  row.name(),
                  static_cast<unsigned long long>(row.samples),
                  static_cast<double>(row.self_ns) / 1e6,
                  row.share * 100.0);
    out += buf;
  }
  return out;
}

}  // namespace sparta::obs

// Critical-path attribution for scatter-gather queries.
//
// A completed cluster query's end-to-end latency is the arrival→finalize
// interval; the trace knows exactly where it went. The span DAG is:
//
//   kAdmissionWait (serving track)  arrival ─ dispatch
//   kShardRpc (node track)          send ─ reply arrival   [parent]
//     kShardService (same track)    node arrival ─ response departure
//
// linked by the shared correlation payload (a = query record,
// b = PackShardAttempt(shard, attempt)). A query finalizes when its
// *last* shard resolves, so the critical path runs through exactly one
// attempt — the rpc span whose reply arrival equals the completion time
// — or, when the last shard was given up (timeouts/breaker skips), the
// whole dispatch→completion interval is retry/timeout overhead.
//
// AttributeQuery decomposes the interval into queue wait, retry+hedge
// overhead (dispatch → winning send), request network, shard service,
// response network and merge, and the pieces reconcile *exactly*:
// Total() == completion - dispatch for every completed query, enforced
// by tests/test_cluster.cpp against the measured virtual latency.
#pragma once

#include <vector>

#include "exec/context.h"
#include "obs/trace.h"

namespace sparta::obs {

struct CriticalPath {
  std::size_t record = 0;
  /// False only when the query never completed (no decomposition).
  bool found = false;
  /// Completion was set by giving a shard up (timeout exhaustion or
  /// breaker fail-fast), not by a reply — the path is pure overhead.
  bool timeout_bound = false;
  /// Critical shard / node / attempt ordinal (attempt > 0 means the
  /// winner was a retry or hedge). shard == -1 when unknown
  /// (instant exhaustion leaves no per-shard event at completion).
  int shard = -1;
  int node = -1;
  std::size_t attempt = 0;

  exec::VirtualTime queue_wait = 0;      ///< arrival → dispatch
  exec::VirtualTime retry_overhead = 0;  ///< dispatch → winning send
  exec::VirtualTime net_request = 0;     ///< send → node arrival
  exec::VirtualTime service = 0;         ///< node arrival → response out
  exec::VirtualTime net_response = 0;    ///< response out → reply arrival
  exec::VirtualTime merge = 0;           ///< reply arrival → finalize

  /// Σ components past dispatch; equals completion - dispatch exactly.
  exec::VirtualTime Total() const {
    return retry_overhead + net_request + service + net_response + merge;
  }
};

/// Walks the cluster trace for query `record` and attributes
/// [dispatch, completion] across the stages above. `arrival`,
/// `dispatch`, `completion` come from the serving record (ServedQuery);
/// the trace supplies the structure. Deterministic: ties (two replies
/// landing on the same virtual instant) break toward the smallest
/// correlation payload.
CriticalPath AttributeQuery(const Tracer& tracer, std::size_t record,
                            exec::VirtualTime arrival,
                            exec::VirtualTime dispatch,
                            exec::VirtualTime completion);

}  // namespace sparta::obs

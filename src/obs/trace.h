// Per-query span tracing: where the time inside a query goes.
//
// The tracer records scoped begin/end events (jobs, postings-segment
// scans, docMap accesses, heap updates, SSD reads, lock waits, queue
// waits) and point-in-time instant events (I/O retries, admission
// decisions, ladder rung changes, breaker flips), stamped with the
// executor clock and a track id. Tracks 0..W-1 are the workers (spans on
// a worker track strictly nest — each worker has one monotone clock and
// spans are emitted by RAII scopes); track W is the scheduler (job queue
// waits, which legitimately overlap); track W+1 is the serving layer
// (admission waits and policy events).
//
// Determinism contract (enforced by tests/test_obs.cpp): tracing is
// off by default and the off path is a null-pointer check — no charges,
// no allocations — so traced-off runs are bit-identical to builds
// without this layer. With tracing on, hooks read clocks but never
// charge virtual time, so result sets and virtual latencies are
// unchanged; under an address-independent cost model (coherence_miss ==
// l1_hit) the same seed yields a byte-identical exported trace.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::obs {

/// Runtime tracing knob, carried by SimConfig / ThreadedExecutor::Options
/// (machine-level spans: jobs, I/O, locks, queue waits, docMap) and by
/// SearchParams (algorithm-level spans: postings scans, heap updates,
/// cleaner passes, merges). Off by default everywhere.
struct TraceConfig {
  bool enabled = false;
};

/// Scoped (begin/end) event kinds.
enum class SpanKind : std::uint8_t {
  kJob,           ///< one job body, dispatch overhead included
  kPostingsScan,  ///< one posting-list segment scan
  kDocMapAccess,  ///< shared/local document-map operation
  kHeapUpdate,    ///< top-k heap insert under the heap lock
  kIoRead,        ///< one page through the cache/SSD model
  kLockWait,      ///< contended lock acquisition (wait + handoff)
  kQueueWait,     ///< job sat in the executor queue (scheduler track)
  kCleanerPass,   ///< one Sparta cleaner prune/stop pass
  kTermMapBuild,  ///< Sparta termMap replica construction
  kMerge,         ///< local-heap / shard-result merge job
  kFinalize,      ///< accumulator sweep building the final heap
  kAdmissionWait, ///< admission-queue wait (serving track)
  // Appended (not inserted) so pre-live-update traces keep their codes.
  kMergeBuild,    ///< one live-index merge chunk job
  kDeltaFreeze,   ///< freezing the active delta segment (refresh)
  // Appended for cluster serving. In a cluster trace, tracks 0..N-1 are
  // the *nodes*, the scheduler track carries fabric events, and the
  // serving track the coordinator's policy events (serve/coordinator.h).
  kShardRpc,      ///< one shard RPC, send to reply arrival (node track)
  // Appended for cross-shard correlation (PR 10). The child of a
  // kShardRpc parent: node arrival to response departure, same track.
  // Both carry the same correlation payload — a = the coordinator's
  // query record id, b = shard | attempt-ordinal << 16 — so the
  // parent/child link survives export round-trips byte-for-byte
  // (obs/critical_path.h walks it).
  kShardService,  ///< node-side service time of one shard attempt
};

/// kShardRpc/kShardService payload b: shard in the low 16 bits, the
/// per-(query, shard) attempt ordinal above (retries and hedges get
/// fresh ordinals, so overlapping attempts stay distinguishable).
constexpr std::uint64_t PackShardAttempt(int shard, std::size_t attempt) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(shard)) |
         (static_cast<std::uint64_t>(attempt) << 16);
}
constexpr int UnpackShard(std::uint64_t packed) {
  return static_cast<int>(packed & 0xFFFF);
}
constexpr std::size_t UnpackAttempt(std::uint64_t packed) {
  return static_cast<std::size_t>(packed >> 16);
}

/// Point events.
enum class InstantKind : std::uint8_t {
  kIoRetry,         ///< transient read error: retries charged
  kFaultStall,      ///< injected worker stall at job dispatch
  kAdmissionReject, ///< bounced: admission queue full
  kAdmissionShed,   ///< shed: predicted wait forfeits the SLO
  kBreakerDrop,     ///< dropped: circuit breaker open
  kLadderRung,      ///< degradation-ladder rung changed at dispatch
  kBreakerState,    ///< observed breaker state changed
  // Appended (not inserted) so pre-live-update traces keep their codes.
  kMergePublish,    ///< live-index merge committed a new main segment
  kMergeAbort,      ///< live-index merge aborted (crash or torn write)
  kEpochReclaim,    ///< retired snapshot epochs reclaimed
  // Appended for cluster serving (see SpanKind note on track layout).
  kShardTimeout,    ///< attempt deadline expired with no reply
  kShardHedge,      ///< hedged duplicate sent to another replica
  kNetDrop,         ///< message lost (injected drop or partition)
  kNodeCrash,       ///< node fail-stopped
  kNodeRestart,     ///< node rejoined cold
  // Appended for the observability plane (PR 10).
  kSloBreach,       ///< windowed SLO burn rate crossed the alert line
};

const char* SpanKindName(SpanKind kind);
const char* InstantKindName(InstantKind kind);
/// Chrome-trace arg-field names for the two payload slots of a kind.
const char* SpanArgName(SpanKind kind, int slot);
const char* InstantArgName(InstantKind kind, int slot);

/// One recorded event. Spans have end >= begin; instants have end ==
/// begin and is_instant set. `a`/`b` are kind-specific payloads (see
/// SpanArgName) — always derived from deterministic values (never
/// addresses), so exports are byte-stable across runs.
struct TraceEvent {
  exec::VirtualTime begin = 0;
  exec::VirtualTime end = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint8_t code = 0;  ///< SpanKind or InstantKind
  bool is_instant = false;

  SpanKind span_kind() const { return static_cast<SpanKind>(code); }
  InstantKind instant_kind() const {
    return static_cast<InstantKind>(code);
  }
};

/// Event sink owned by an executor. Append-only per-track vectors; the
/// per-track emission order is deterministic because the executors are.
/// Thread-safe (the threaded executor's workers emit concurrently); the
/// simulator pays only an uncontended mutex.
class Tracer {
 public:
  explicit Tracer(int num_workers);

  int num_workers() const { return num_workers_; }
  int num_tracks() const { return num_workers_ + 2; }
  int scheduler_track() const { return num_workers_; }
  int serving_track() const { return num_workers_ + 1; }

  void AddSpan(int track, SpanKind kind, exec::VirtualTime begin,
               exec::VirtualTime end, std::uint64_t a = 0,
               std::uint64_t b = 0);
  void AddInstant(int track, InstantKind kind, exec::VirtualTime ts,
                  std::uint64_t a = 0, std::uint64_t b = 0);

  /// Events of one track in emission order (inner RAII spans precede the
  /// enclosing span — order by end time, not begin).
  //
  // TSA-exempt: returns an unlocked reference into tracks_. Valid only
  // after the run drains (export/reconciliation readers), when no worker
  // can still be emitting; taking the mutex here could not protect the
  // returned reference anyway.
  const std::vector<TraceEvent>& track(int t) const
      SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    return tracks_[static_cast<std::size_t>(t)];
  }

  std::size_t total_events() const;

  /// Count / payload-sum helpers for reconciliation tests and metrics.
  std::uint64_t CountSpans(SpanKind kind) const;
  std::uint64_t CountInstants(InstantKind kind) const;
  std::uint64_t SumSpanArgB(SpanKind kind) const;
  std::uint64_t SumInstantArgA(InstantKind kind) const;

  void Clear();

 private:
  int num_workers_;
  std::vector<std::vector<TraceEvent>> tracks_ SPARTA_GUARDED_BY(mutex_);
  mutable util::Mutex mutex_;
};

class Profiler;
class FlightRecorder;
namespace detail {
/// Out-of-line Profiler frame hooks (trace.h cannot include profiler.h —
/// profiler.h needs SpanKind from here). Called only on non-null
/// profilers; the null check stays inline in SpanScope.
void ProfilerPushFrame(Profiler& profiler, int worker, SpanKind kind);
void ProfilerPopFrame(Profiler& profiler, int worker);
/// Out-of-line FlightRecorder span emission (same layering constraint:
/// flight_recorder.h includes this header). Appends the span and
/// returns the modeled per-event recording cost for the caller to
/// charge. Called only on non-null recorders.
exec::VirtualTime RecorderAddSpan(FlightRecorder& recorder, int track,
                                  SpanKind kind, exec::VirtualTime begin,
                                  exec::VirtualTime end, std::uint64_t a,
                                  std::uint64_t b);
}  // namespace detail

/// RAII span bound to the executing worker's track. Reads the tracer
/// once; a null tracer (tracing off, or `enabled` false for
/// algorithm-gated spans) makes every member a no-op. Also maintains the
/// worker's live span stack for the sampling profiler (obs/profiler.h):
/// the same scope that emits a span is a profiler frame, so folded
/// stacks and the trace describe identical nesting.
class SpanScope {
 public:
  SpanScope(exec::WorkerContext& worker, SpanKind kind,
            bool enabled = true)
      : worker_(worker),
        tracer_(enabled ? worker.tracer() : nullptr),
        recorder_(enabled ? worker.recorder() : nullptr),
        profiler_(enabled ? worker.profiler() : nullptr),
        kind_(kind) {
    if (tracer_ != nullptr || recorder_ != nullptr) {
      begin_ = worker_.TraceNow();
    }
    if (profiler_ != nullptr) {
      detail::ProfilerPushFrame(*profiler_, worker_.worker_id(), kind_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_args(std::uint64_t a, std::uint64_t b = 0) {
    a_ = a;
    b_ = b;
  }

  bool active() const { return tracer_ != nullptr; }

  ~SpanScope() {
    if (profiler_ != nullptr) {
      detail::ProfilerPopFrame(*profiler_, worker_.worker_id());
    }
    if (tracer_ != nullptr) {
      tracer_->AddSpan(worker_.worker_id(), kind_, begin_,
                       worker_.TraceNow(), a_, b_);
    }
    if (recorder_ != nullptr) {
      // Recording is always-on and therefore honest about its cost: the
      // modeled per-event charge lands after the span closes, so the
      // span itself stays comparable to recorder-off traces.
      worker_.Charge(detail::RecorderAddSpan(*recorder_,
                                             worker_.worker_id(), kind_,
                                             begin_, worker_.TraceNow(),
                                             a_, b_));
    }
  }

 private:
  exec::WorkerContext& worker_;
  Tracer* tracer_;
  FlightRecorder* recorder_;
  Profiler* profiler_;
  SpanKind kind_;
  exec::VirtualTime begin_ = 0;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace sparta::obs

#include "exec/threaded_executor.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace sparta::exec {
namespace {

using Clock = std::chrono::steady_clock;

class ThreadedQuery;

/// Per-worker context: real clock, no-op cost hooks, shared memory meter,
/// deadline polls against the shared per-query deadline.
class ThreadedWorker final : public WorkerContext {
 public:
  ThreadedWorker(int id, Clock::time_point epoch,
                 std::atomic<std::int64_t>* mem_used,
                 std::int64_t mem_budget,
                 const std::atomic<VirtualTime>* deadline,
                 const JobQueue* queue, int num_workers,
                 obs::Tracer* tracer, Clock::time_point trace_epoch)
      : id_(id), epoch_(epoch), mem_used_(mem_used),
        mem_budget_(mem_budget), deadline_(deadline), queue_(queue),
        num_workers_(num_workers), tracer_(tracer),
        trace_epoch_(trace_epoch) {}

  int worker_id() const override { return id_; }

  VirtualTime Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch_)
        .count();
  }

  void Charge(VirtualTime) override {}
  void ChargePostings(std::uint64_t) override {}
  void SharedAccess(const void*, AccessKind) override {}
  void StructureAccess(std::size_t, bool, bool) override {}
  void StructureAccessMany(std::size_t, bool, std::uint64_t) override {}
  void IoSequential(std::uint64_t, std::uint64_t) override {}
  void IoRandom(std::uint64_t) override {}

  bool ChargeMemory(std::int64_t delta_bytes) override {
    const auto used =
        mem_used_->fetch_add(delta_bytes, std::memory_order_relaxed) +
        delta_bytes;
    return used <= mem_budget_;
  }

  VirtualTime deadline() const override {
    return deadline_->load(std::memory_order_relaxed);
  }

  bool ShouldStop() const override { return Now() >= deadline(); }

  StopCause stop_cause() const override {
    return ShouldStop() ? StopCause::kDeadline : StopCause::kNone;
  }

  double QueuePressure() const override {
    return static_cast<double>(queue_->queued()) /
           static_cast<double>(num_workers_);
  }

  obs::Tracer* tracer() const override { return tracer_; }

  VirtualTime TraceNow() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - trace_epoch_)
        .count();
  }

 private:
  int id_;
  Clock::time_point epoch_;
  std::atomic<std::int64_t>* mem_used_;
  std::int64_t mem_budget_;
  const std::atomic<VirtualTime>* deadline_;
  const JobQueue* queue_;
  int num_workers_;
  obs::Tracer* tracer_;
  Clock::time_point trace_epoch_;
};

/// CtxLock over std::mutex.
class ThreadedLock final : public CtxLock {
 public:
  // TSA-exempt: the capability lives on the CtxLock interface (see
  // context.h); the analysis cannot see that the inner mutex implements
  // the interface's ACQUIRE/RELEASE contract.
  void Lock(WorkerContext&) override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.lock();
  }
  void Unlock(WorkerContext&) override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }

 private:
  // sparta-lint: allow(lock-pairing) the inner mutex implements the
  // CtxLock capability itself; there is no separate guarded field.
  std::mutex mutex_;
};

class ThreadedQuery final : public QueryContext {
 public:
  ThreadedQuery(ThreadedExecutor::Options options, obs::Tracer* tracer,
                Clock::time_point trace_epoch, std::uint64_t qid)
      : options_(options), epoch_(Clock::now()), tracer_(tracer),
        trace_epoch_(trace_epoch), qid_(qid) {}

  void Submit(JobFn job) override { queue_.Push(std::move(job)); }

  int num_workers() const override { return options_.num_workers; }

  std::unique_ptr<CtxLock> MakeLock() override {
    return std::make_unique<ThreadedLock>();
  }

  void RunToCompletion() override {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(options_.num_workers));
    for (int w = 0; w < options_.num_workers; ++w) {
      workers.emplace_back([this, w] {
        ThreadedWorker ctx(w, epoch_, &mem_used_,
                           options_.memory_budget_bytes, &deadline_,
                           &queue_, options_.num_workers, tracer_,
                           trace_epoch_);
        while (auto job = queue_.Pop()) {
          {
            obs::SpanScope span(ctx, obs::SpanKind::kJob);
            span.set_args(qid_);
            (*job)(ctx);
          }
          queue_.JobDone();
        }
      });
    }
    for (auto& t : workers) t.join();
    end_time_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - epoch_)
                    .count();
  }

  VirtualTime start_time() const override { return 0; }
  VirtualTime end_time() const override { return end_time_; }

  void set_deadline(VirtualTime absolute) override {
    deadline_.store(absolute, std::memory_order_relaxed);
  }
  VirtualTime deadline() const override {
    return deadline_.load(std::memory_order_relaxed);
  }
  std::size_t outstanding_jobs() const override {
    return queue_.outstanding();
  }

 private:
  ThreadedExecutor::Options options_;
  Clock::time_point epoch_;
  JobQueue queue_;
  std::atomic<std::int64_t> mem_used_{0};
  std::atomic<VirtualTime> deadline_{kNever};
  VirtualTime end_time_ = 0;
  obs::Tracer* tracer_;
  Clock::time_point trace_epoch_;
  std::uint64_t qid_;
};

}  // namespace

ThreadedExecutor::ThreadedExecutor(Options options)
    : options_(options), trace_epoch_(std::chrono::steady_clock::now()) {
  SPARTA_CHECK(options_.num_workers >= 1);
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(options_.num_workers);
  }
}

std::unique_ptr<QueryContext> ThreadedExecutor::CreateQuery() {
  return std::make_unique<ThreadedQuery>(
      options_, tracer_.get(), trace_epoch_,
      next_query_id_.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace sparta::exec

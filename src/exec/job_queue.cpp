#include "exec/job_queue.h"

namespace sparta::exec {

void JobQueue::Push(JobFn job) {
  {
    const std::lock_guard guard(mutex_);
    queue_.push_back(std::move(job));
    ++outstanding_;
  }
  cv_.notify_one();
}

std::optional<JobFn> JobQueue::Pop() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty() || outstanding_ == 0; });
  if (queue_.empty()) return std::nullopt;  // drained
  JobFn job = std::move(queue_.front());
  queue_.pop_front();
  return job;
}

void JobQueue::JobDone() {
  bool drained = false;
  {
    const std::lock_guard guard(mutex_);
    SPARTA_CHECK(outstanding_ > 0);
    --outstanding_;
    drained = (outstanding_ == 0);
  }
  if (drained) cv_.notify_all();  // wake blocked poppers so they can exit
}

std::size_t JobQueue::outstanding() const {
  const std::lock_guard guard(mutex_);
  return outstanding_;
}

std::size_t JobQueue::queued() const {
  const std::lock_guard guard(mutex_);
  return queue_.size();
}

}  // namespace sparta::exec

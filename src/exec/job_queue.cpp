#include "exec/job_queue.h"

namespace sparta::exec {

void JobQueue::Push(JobFn job) {
  {
    const util::MutexLock guard(mutex_);
    queue_.push_back(std::move(job));
    ++outstanding_;
  }
  cv_.NotifyOne();
}

std::optional<JobFn> JobQueue::Pop() {
  const util::MutexLock guard(mutex_);
  while (queue_.empty() && outstanding_ > 0) cv_.Wait(mutex_);
  if (queue_.empty()) return std::nullopt;  // drained
  JobFn job = std::move(queue_.front());
  queue_.pop_front();
  return job;
}

void JobQueue::JobDone() {
  bool drained = false;
  {
    const util::MutexLock guard(mutex_);
    SPARTA_CHECK(outstanding_ > 0);
    --outstanding_;
    drained = (outstanding_ == 0);
  }
  if (drained) cv_.NotifyAll();  // wake blocked poppers so they can exit
}

std::size_t JobQueue::outstanding() const {
  const util::MutexLock guard(mutex_);
  return outstanding_;
}

std::size_t JobQueue::queued() const {
  const util::MutexLock guard(mutex_);
  return queue_.size();
}

}  // namespace sparta::exec

// Execution abstraction: one algorithm code path, two executors.
//
// Retrieval algorithms are written as self-replenishing *jobs* submitted
// to a per-query QueryContext (exactly the job-queue structure of the
// paper's Algorithm 1). The context is backed either by
//   * exec::ThreadedExecutor — real std::threads, wall-clock time; or
//   * sim::SimExecutor      — a deterministic discrete-event simulator
//     with virtual worker clocks and a memory/IO cost model, which is how
//     the paper's 12-core results are reproduced on any host.
//
// Algorithms interact with the machine only through WorkerContext:
// clocks, CPU cost charging, shared-line coherence hints, structure
// access costs, disk I/O, and memory-budget accounting. The threaded
// executor implements the cost hooks as no-ops (real hardware charges
// them implicitly); the simulator turns them into virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "util/common.h"
#include "util/thread_annotations.h"

namespace sparta::obs {
class FlightRecorder;
class Profiler;
class Tracer;
}  // namespace sparta::obs

namespace sparta::exec {

/// Time in nanoseconds. Virtual under the simulator, steady-clock-based
/// under the threaded executor.
using VirtualTime = std::int64_t;

inline constexpr VirtualTime kNever =
    std::numeric_limits<VirtualTime>::max() / 4;

inline constexpr VirtualTime kMillisecond = 1'000'000;

enum class AccessKind : std::uint8_t { kRead, kWrite };

/// Why a query should wind down early. Ordered by severity so concurrent
/// observers can merge causes with max().
enum class StopCause : std::uint8_t {
  kNone = 0,
  /// The query's deadline passed; finalize with the best-so-far top-k.
  kDeadline = 1,
  /// An injected fault escalated past its retry budget (e.g. a
  /// persistent I/O error); finalize with the best-so-far top-k.
  kFault = 2,
};

/// Merges two stop causes, keeping the more severe one.
constexpr StopCause MergeStopCause(StopCause a, StopCause b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a
                                                                      : b;
}

/// Per-query fault/robustness counters maintained by the executor.
struct FaultStats {
  /// Faults injected into this query (stalls, I/O errors/spikes,
  /// preemptions, budget squeezes).
  std::uint64_t injected = 0;
  /// Transient-I/O retry attempts (each priced in virtual time).
  std::uint64_t io_retries = 0;
  /// Reads whose retry budget was exhausted, escalating to StopCause::kFault.
  std::uint64_t io_escalations = 0;
};

/// Handle passed to every job invocation; identifies the executing worker
/// and carries the cost-model hooks.
class WorkerContext {
 public:
  virtual ~WorkerContext() = default;

  /// Executing worker id in [0, num_workers).
  virtual int worker_id() const = 0;

  /// This worker's clock (virtual ns in sim mode; elapsed real ns since
  /// query start in threaded mode).
  virtual VirtualTime Now() const = 0;

  /// Charges `ns` of CPU work to this worker. No-op on real threads.
  virtual void Charge(VirtualTime ns) = 0;

  /// Charges the per-posting CPU cost (decode + integer scoring) for
  /// `n` postings. No-op on real threads.
  virtual void ChargePostings(std::uint64_t n) = 0;

  /// Coherence hint for a small hot shared variable (a term-UB entry, a
  /// flag, a threshold). `line` identifies the cache line (any address on
  /// it). The simulator charges an invalidation miss to readers after a
  /// remote write, reproducing the cache-line ping-pong the paper's lazy
  /// UB update optimization avoids.
  virtual void SharedAccess(const void* line, AccessKind kind) = 0;

  /// Cost hint for accessing a large in-memory structure (a document
  /// map). The simulator prices the access by which cache level a
  /// structure of `structure_bytes` lives in; `write_shared` marks
  /// structures concurrently mutated by other workers (never cacheable);
  /// `insert` adds node-allocation/rehash cost.
  virtual void StructureAccess(std::size_t structure_bytes,
                               bool write_shared, bool insert = false) = 0;

  /// Batched form of StructureAccess for tight loops: `count` accesses to
  /// a structure of the given size.
  virtual void StructureAccessMany(std::size_t structure_bytes,
                                   bool write_shared,
                                   std::uint64_t count) = 0;

  /// NUMA-placed variant of StructureAccess: the structure (or stripe of
  /// one) has a home memory domain, and accesses from workers on another
  /// socket pay the remote-memory premium when the access misses to
  /// DRAM. Executors without a socket topology (real threads; the
  /// default single-domain simulation) ignore the hint, so the default
  /// forwarding keeps them bit-identical to pre-NUMA behavior.
  virtual void StructureAccessHomed(std::size_t structure_bytes,
                                    bool write_shared, int /*home_domain*/,
                                    bool insert = false) {
    StructureAccess(structure_bytes, write_shared, insert);
  }

  /// The NUMA domain this worker's core belongs to (0 on executors
  /// without a socket topology). Contiguous worker blocks map to
  /// domains, mirroring how cores enumerate on real two-socket parts.
  virtual int numa_domain() const { return 0; }

  /// Sequential read of `length` bytes at `offset` of the index file;
  /// charged through the page-cache/SSD model.
  virtual void IoSequential(std::uint64_t offset, std::uint64_t length) = 0;

  /// Random 1-page read at `offset` (TA-RA's secondary-index lookups).
  virtual void IoRandom(std::uint64_t offset) = 0;

  /// Adjusts the query's modeled memory footprint by `delta_bytes`
  /// (negative to release). Returns false once the budget is exceeded —
  /// the caller must then abort the query with an OOM result (this is
  /// how the paper's "N/A — crashed due to lack of memory" cells are
  /// reproduced without crashing).
  [[nodiscard]] virtual bool ChargeMemory(std::int64_t delta_bytes) = 0;

  /// Race-detector-only access event for granular structures whose cost
  /// is already priced through StructureAccess (a docMap stripe table).
  /// Charges nothing; ignored outside `SimConfig::race_check` runs.
  virtual void ShadowAccess(const void* /*addr*/, AccessKind /*kind*/) {}

  /// Declares to the race detector that every critical section completed
  /// so far under `token` (a CtxLock used as a release point)
  /// happens-before this worker's next access — the acquire side of a
  /// module-level publication protocol the detector cannot observe (the
  /// docMap freeze; see DESIGN.md §6). No cost; ignored outside
  /// race-check runs.
  virtual void AnnotateAcquire(const void* /*token*/) {}

  /// The query's absolute deadline on this executor's clock; kNever when
  /// none was set.
  virtual VirtualTime deadline() const { return kNever; }

  /// Anytime poll point: true once the query should stop expanding work
  /// and finalize with its best-so-far result (deadline passed, or an
  /// injected fault escalated). Algorithms check this at job/segment
  /// boundaries; it must stay cheap enough to call there.
  virtual bool ShouldStop() const { return false; }

  /// Why ShouldStop() returned true (kNone while it is false).
  virtual StopCause stop_cause() const { return StopCause::kNone; }

  /// Machine-level queue pressure: jobs queued on the executor divided
  /// by its worker count (0 = idle machine, 1 = one queued job per
  /// worker, >1 = backlog). The serving layer samples this to drive its
  /// degradation ladder; algorithms themselves keep adapting only
  /// through the deadline/ShouldStop hooks above.
  virtual double QueuePressure() const { return 0.0; }

  /// Span sink for query-lifecycle tracing, or nullptr when tracing is
  /// off (the default). Instrumentation sites read this once per scope
  /// (obs::SpanScope) so the off path is a single null check — no
  /// charges, no allocations, no behavior change.
  virtual obs::Tracer* tracer() const { return nullptr; }

  /// Timestamp for trace events. Equal to Now() in the simulator; the
  /// threaded executor rebases onto an executor-lifetime epoch so spans
  /// from successive queries stay monotone on one timeline.
  virtual VirtualTime TraceNow() const { return Now(); }

  /// Contention/sampling profiler, or nullptr when profiling is off (the
  /// default, and always on real threads). Like tracer(), sites read it
  /// once so the off path is a single null check.
  virtual obs::Profiler* profiler() const { return nullptr; }

  /// Always-on flight recorder (obs/flight_recorder.h), or nullptr when
  /// recording is off (the default). Like tracer(), sites read it once
  /// so the off path is a single null check; unlike tracer hooks,
  /// recorder emission from a machine context charges the recorder's
  /// modeled per-event cost.
  virtual obs::FlightRecorder* recorder() const { return nullptr; }
};

/// A mutual-exclusion lock priced by the executor (real std::mutex on
/// threads; a contention/serialization model in the simulator).
///
/// The capability lives on this interface: fields are declared
/// SPARTA_GUARDED_BY(*lock_) against the CtxLock pointer, and the
/// executor-specific implementations (SimLock/ThreadedLock/PoolLock)
/// mark their override bodies SPARTA_NO_THREAD_SAFETY_ANALYSIS — the
/// analysis checks call sites against this contract, not the pricing
/// internals.
class SPARTA_CAPABILITY("mutex") CtxLock {
 public:
  virtual ~CtxLock() = default;
  virtual void Lock(WorkerContext& worker) SPARTA_ACQUIRE() = 0;
  virtual void Unlock(WorkerContext& worker) SPARTA_RELEASE() = 0;
};

/// RAII guard for CtxLock.
class SPARTA_SCOPED_CAPABILITY CtxLockGuard {
 public:
  CtxLockGuard(CtxLock& lock, WorkerContext& worker) SPARTA_ACQUIRE(lock)
      : lock_(lock), worker_(worker) {
    lock_.Lock(worker_);
  }
  ~CtxLockGuard() SPARTA_RELEASE() { lock_.Unlock(worker_); }
  CtxLockGuard(const CtxLockGuard&) = delete;
  CtxLockGuard& operator=(const CtxLockGuard&) = delete;

 private:
  CtxLock& lock_;
  WorkerContext& worker_;
};

using JobFn = std::function<void(WorkerContext&)>;

/// Per-query execution facade.
class QueryContext {
 public:
  virtual ~QueryContext() = default;

  /// Enqueues a job. Callable both from outside (initial jobs) and from
  /// within a running job (self-replenishing segment tasks).
  virtual void Submit(JobFn job) = 0;

  /// Number of workers the query may use.
  virtual int num_workers() const = 0;

  /// NUMA domains of the executing machine (1 = no socket topology).
  /// Algorithms use this to size per-domain sharded state (heap update
  /// words) and to compute stripe home domains at query setup.
  virtual int numa_domains() const { return 1; }

  /// Creates a lock priced by this executor.
  virtual std::unique_ptr<CtxLock> MakeLock() = 0;

  /// Runs all submitted jobs to completion (latency mode: the query owns
  /// the worker pool). Valid only when this is the only active query.
  virtual void RunToCompletion() = 0;

  /// The query's start time on this executor's clock.
  virtual VirtualTime start_time() const = 0;

  /// Completion time of the query's last job (valid after drain).
  virtual VirtualTime end_time() const = 0;

  /// Sets the query's absolute deadline (on this executor's clock, so
  /// callers typically pass start_time() + budget). Workers observe it
  /// through WorkerContext::ShouldStop(); the executor never cancels
  /// jobs itself — algorithms wind down cooperatively at poll points.
  virtual void set_deadline(VirtualTime /*absolute*/) {}

  /// The configured deadline; kNever when none was set.
  virtual VirtualTime deadline() const { return kNever; }

  /// Fault/retry counters accumulated for this query (all-zero on
  /// executors without fault injection).
  virtual FaultStats fault_stats() const { return {}; }

  /// Jobs of this query still queued or running. Once a started query
  /// reaches zero it can never rise again (only running jobs submit
  /// successors), so `Start()`ed queries with zero outstanding jobs have
  /// completed — this is how the serving layer harvests finished queries
  /// while the shared machine keeps draining. Executors that do not
  /// track per-query jobs return 0.
  virtual std::size_t outstanding_jobs() const { return 0; }

  /// Marks [addr, addr+bytes) as an intentional benign race for the race
  /// detector: deliberate lock-free accesses to atomics (the paper's
  /// lazy UB reads, done flags, pBMW's shared Θ). Detections inside the
  /// range are counted as suppressed instead of reported. No-op outside
  /// `SimConfig::race_check` runs.
  virtual void AnnotateBenignRace(const void* /*addr*/,
                                  std::size_t /*bytes*/,
                                  const char* /*label*/) {}

  /// Names [addr, addr+bytes) for the contention profiler: coherence
  /// misses, invalidations and lock waits on the range are attributed to
  /// `structure` (register a CtxLock's own address to name the lock).
  /// Algorithms register their shared hot state once at query setup;
  /// no-op when profiling is off.
  virtual void RegisterContentionRange(const void* /*addr*/,
                                       std::size_t /*bytes*/,
                                       const char* /*structure*/) {}
};

}  // namespace sparta::exec

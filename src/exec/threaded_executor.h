// Real-thread executor: the production-mode backend of QueryContext.
//
// Cost hooks are no-ops (real hardware pays them implicitly); Now() is a
// steady-clock reading relative to query start, so Δ-based approximate
// stopping works identically to the simulator.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "exec/context.h"
#include "exec/job_queue.h"
#include "obs/trace.h"

namespace sparta::exec {

class ThreadedExecutor {
 public:
  struct Options {
    int num_workers = 1;
    /// Modeled memory budget per query; the default is effectively
    /// unlimited (real executions do not simulate OOM).
    std::int64_t memory_budget_bytes =
        std::numeric_limits<std::int64_t>::max();
    /// Query-lifecycle tracing (wall-clock timestamps; off by default).
    /// Unlike the simulator, threaded traces are not byte-reproducible —
    /// they time real hardware — but the span structure obeys the same
    /// well-formedness invariants.
    obs::TraceConfig trace;
  };

  explicit ThreadedExecutor(Options options);

  /// Creates a fresh per-query context. The query's jobs run when
  /// RunToCompletion() is invoked on the returned context; workers are
  /// spawned for the duration of that call.
  std::unique_ptr<QueryContext> CreateQuery();

  const Options& options() const { return options_; }

  /// Non-null iff `Options::trace.enabled`. Spans from successive
  /// queries share one timeline anchored at executor construction.
  obs::Tracer* tracer() const { return tracer_.get(); }

 private:
  Options options_;
  std::unique_ptr<obs::Tracer> tracer_;
  /// Trace-timestamp epoch: executor construction, not query start, so
  /// per-track timestamps stay monotone across sequential queries.
  std::chrono::steady_clock::time_point trace_epoch_;
  std::atomic<std::uint64_t> next_query_id_{0};
};

}  // namespace sparta::exec

// Real-thread executor: the production-mode backend of QueryContext.
//
// Cost hooks are no-ops (real hardware pays them implicitly); Now() is a
// steady-clock reading relative to query start, so Δ-based approximate
// stopping works identically to the simulator.
#pragma once

#include <atomic>
#include <memory>

#include "exec/context.h"
#include "exec/job_queue.h"

namespace sparta::exec {

class ThreadedExecutor {
 public:
  struct Options {
    int num_workers = 1;
    /// Modeled memory budget per query; the default is effectively
    /// unlimited (real executions do not simulate OOM).
    std::int64_t memory_budget_bytes =
        std::numeric_limits<std::int64_t>::max();
  };

  explicit ThreadedExecutor(Options options);

  /// Creates a fresh per-query context. The query's jobs run when
  /// RunToCompletion() is invoked on the returned context; workers are
  /// spawned for the duration of that call.
  std::unique_ptr<QueryContext> CreateQuery();

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace sparta::exec

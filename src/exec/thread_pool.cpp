#include "exec/thread_pool.h"

#include <chrono>

namespace sparta::exec {

using Clock = std::chrono::steady_clock;

namespace {

class PoolLock final : public CtxLock {
 public:
  // TSA-exempt: the capability is the CtxLock interface (see context.h);
  // the analysis cannot see that this body's inner mutex acquisition
  // satisfies the interface's ACQUIRE/RELEASE contract.
  void Lock(WorkerContext&) override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.lock();
  }
  void Unlock(WorkerContext&) override SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    mutex_.unlock();
  }

 private:
  // sparta-lint: allow(lock-pairing) the inner mutex implements the
  // CtxLock capability itself; there is no separate guarded field.
  std::mutex mutex_;
};

/// Base worker context of a pool worker: real clock, no-op cost hooks.
/// Memory accounting is query-scoped (see QueryScopedContext).
class PoolWorkerContext final : public WorkerContext {
 public:
  PoolWorkerContext(int id, Clock::time_point epoch)
      : id_(id), epoch_(epoch) {}

  int worker_id() const override { return id_; }
  VirtualTime Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch_)
        .count();
  }
  void Charge(VirtualTime) override {}
  void ChargePostings(std::uint64_t) override {}
  void SharedAccess(const void*, AccessKind) override {}
  void StructureAccess(std::size_t, bool, bool) override {}
  void StructureAccessMany(std::size_t, bool, std::uint64_t) override {}
  void IoSequential(std::uint64_t, std::uint64_t) override {}
  void IoRandom(std::uint64_t) override {}
  bool ChargeMemory(std::int64_t) override { return true; }

 private:
  int id_;
  Clock::time_point epoch_;
};

/// Decorator binding memory accounting to the job's query.
class QueryScopedContext final : public WorkerContext {
 public:
  QueryScopedContext(WorkerContext& base,
                     std::atomic<std::int64_t>& mem_used,
                     std::int64_t mem_budget)
      : base_(base), mem_used_(mem_used), mem_budget_(mem_budget) {}

  int worker_id() const override { return base_.worker_id(); }
  VirtualTime Now() const override { return base_.Now(); }
  void Charge(VirtualTime ns) override { base_.Charge(ns); }
  void ChargePostings(std::uint64_t n) override {
    base_.ChargePostings(n);
  }
  void SharedAccess(const void* line, AccessKind kind) override {
    base_.SharedAccess(line, kind);
  }
  void StructureAccess(std::size_t bytes, bool shared,
                       bool insert) override {
    base_.StructureAccess(bytes, shared, insert);
  }
  void StructureAccessMany(std::size_t bytes, bool shared,
                           std::uint64_t count) override {
    base_.StructureAccessMany(bytes, shared, count);
  }
  void IoSequential(std::uint64_t offset, std::uint64_t length) override {
    base_.IoSequential(offset, length);
  }
  void IoRandom(std::uint64_t offset) override { base_.IoRandom(offset); }
  bool ChargeMemory(std::int64_t delta) override {
    return mem_used_.fetch_add(delta, std::memory_order_relaxed) + delta <=
           mem_budget_;
  }

 private:
  WorkerContext& base_;
  std::atomic<std::int64_t>& mem_used_;
  std::int64_t mem_budget_;
};

}  // namespace

/// Per-query state + QueryContext facade over the shared pool.
class ThreadPool::PoolQuery final : public QueryContext {
 public:
  PoolQuery(ThreadPool& pool, VirtualTime start)
      : pool_(pool), start_(start) {
    end_.store(start, std::memory_order_relaxed);
  }

  void Submit(JobFn job) override {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    // The pool references this query only while jobs are outstanding;
    // RunToCompletion() below guarantees the needed lifetime.
    pool_.Enqueue([this, job = std::move(job)](WorkerContext& w) {
      QueryScopedContext ctx(w, mem_used_,
                             pool_.options_.memory_budget_bytes);
      job(ctx);
      const auto now = w.Now();
      VirtualTime prev = end_.load(std::memory_order_relaxed);
      while (prev < now && !end_.compare_exchange_weak(
                               prev, now, std::memory_order_relaxed)) {
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const util::MutexLock guard(done_mutex_);
        done_cv_.NotifyAll();
      }
    });
  }

  int num_workers() const override { return pool_.num_workers(); }

  std::unique_ptr<CtxLock> MakeLock() override {
    return std::make_unique<PoolLock>();
  }

  void RunToCompletion() override {
    const util::MutexLock lock(done_mutex_);
    while (pending_.load(std::memory_order_acquire) != 0) {
      done_cv_.Wait(done_mutex_);
    }
  }

  VirtualTime start_time() const override { return start_; }
  VirtualTime end_time() const override {
    return end_.load(std::memory_order_relaxed);
  }

 private:
  ThreadPool& pool_;
  VirtualTime start_;
  std::atomic<VirtualTime> end_{0};
  std::atomic<int> pending_{0};
  std::atomic<std::int64_t> mem_used_{0};
  // sparta-lint: allow(lock-pairing) guards no fields — pairs with
  // done_cv_ only, so completion notifies cannot miss a sleeping waiter.
  util::Mutex done_mutex_;
  util::CondVar done_cv_;
};

void ThreadPool::Enqueue(std::function<void(WorkerContext&)> fn) {
  {
    const util::MutexLock guard(mutex_);
    SPARTA_CHECK(!shutdown_.load(std::memory_order_relaxed));
    jobs_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop(int id) {
  PoolWorkerContext ctx(id, epoch_);
  for (;;) {
    std::function<void(WorkerContext&)> job;
    {
      const util::MutexLock lock(mutex_);
      while (jobs_.empty() && !shutdown_.load(std::memory_order_acquire)) {
        cv_.Wait(mutex_);
      }
      if (jobs_.empty()) return;  // shutdown with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job(ctx);
  }
}

ThreadPool::ThreadPool(Options options) : options_(options) {
  SPARTA_CHECK(options_.num_workers >= 1);
  epoch_ = Clock::now();
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock guard(mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

std::unique_ptr<QueryContext> ThreadPool::CreateQuery() {
  const auto start = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - epoch_)
                         .count();
  return std::make_unique<PoolQuery>(*this, start);
}

std::size_t ThreadPool::QueuedJobs() const {
  const util::MutexLock guard(mutex_);
  return jobs_.size();
}

}  // namespace sparta::exec

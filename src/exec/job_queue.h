// Blocking multi-producer multi-consumer FIFO job queue with drain
// detection, used by the threaded executor.
#pragma once

#include <deque>
#include <optional>

#include "exec/context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::exec {

class JobQueue {
 public:
  /// Enqueues a job. A job counts as outstanding from Push() until the
  /// matching JobDone().
  void Push(JobFn job);

  /// Pops the next job, blocking while the queue is empty but jobs are
  /// still outstanding (they may push successors). Returns nullopt once
  /// the queue has fully drained (no queued and no running jobs).
  std::optional<JobFn> Pop();

  /// Marks one previously popped job as finished.
  void JobDone();

  /// Outstanding = queued + running.
  std::size_t outstanding() const;
  std::size_t queued() const;

 private:
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<JobFn> queue_ SPARTA_GUARDED_BY(mutex_);
  std::size_t outstanding_ SPARTA_GUARDED_BY(mutex_) = 0;
};

}  // namespace sparta::exec

// Shared-pool threaded executor: the production counterpart of the
// paper's throughput mode (§5.1) — "queries are scheduled
// first-come-first-served, and a new query is scheduled for execution
// once there are idle threads ... All queries scheduled for execution
// equally share the thread pool."
//
// One persistent worker pool drains one global FIFO job queue; any
// number of queries may be in flight, each with its own QueryContext
// carrying per-query completion and memory accounting. Use
// ThreadedExecutor (one pool per query) for latency mode.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "exec/context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace sparta::exec {

class ThreadPool {
 public:
  struct Options {
    int num_workers = 4;
    /// Modeled per-query memory budget (unlimited by default).
    std::int64_t memory_budget_bytes =
        std::numeric_limits<std::int64_t>::max();
  };

  explicit ThreadPool(Options options);
  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Creates a query context bound to the shared pool. Its
  /// RunToCompletion() waits for *this query's* jobs only — other
  /// queries keep running; start/end times are on the pool's clock, so
  /// FCFS makespans are directly comparable across queries.
  std::unique_ptr<QueryContext> CreateQuery();

  /// Jobs currently queued (not yet picked up). The paper's admission
  /// rule: admit the next query while this is below the worker count.
  std::size_t QueuedJobs() const;

  int num_workers() const { return options_.num_workers; }

 private:
  class PoolQuery;

  void Enqueue(std::function<void(WorkerContext&)> fn);
  void WorkerLoop(int id);

  Options options_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void(WorkerContext&)>> jobs_
      SPARTA_GUARDED_BY(mutex_);
  /// Atomic (not guarded): written under mutex_, but the CondVar
  /// predicate re-reads it after wakeup and the store doubles as the
  /// release fence the destructor's notify relies on.
  std::atomic<bool> shutdown_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::thread> workers_;
};

}  // namespace sparta::exec

// Query-log generation.
//
// Stands in for the paper's AOL-log sampling (§5.1): "For each number of
// terms from 1 to 12, we independently sample 100 queries of this length
// uniformly at random from the AOL log." Real query terms are popularity
// biased — users type common words far more often than the dictionary
// tail — so query terms are drawn with probability proportional to
// df(t)^alpha, restricted to terms common enough to plausibly appear in
// a query log.
//
// The throughput experiments use the voice-query length distribution of
// Guy [SIGIR'16]: mean 4.2 terms, stddev 2.96, >5% of queries with 10+
// terms (Table 4 / §5.3.2), reproduced here with a discretized clamped
// Gaussian.
#pragma once

#include <vector>

#include "corpus/synthetic.h"
#include "index/inverted_index.h"
#include "util/rng.h"

namespace sparta::corpus {

using Query = std::vector<TermId>;

struct QueryLogSpec {
  int min_terms = 1;
  int max_terms = 12;
  int queries_per_length = 100;
  /// Popularity bias: term sampling weight = df^alpha.
  double alpha = 0.75;
  /// Ignore dictionary-tail terms with fewer postings than this.
  std::uint32_t min_df = 8;
  /// When the corpus has topic structure, the fraction of a query's
  /// terms drawn from one topic (real queries are topical: their terms
  /// co-occur in documents, which is what makes the best documents match
  /// most of the query).
  double topical_fraction = 0.75;
  std::uint64_t seed = 0xA01;
};

class QueryLog {
 public:
  /// Samples the full per-length grid from the given index's term
  /// statistics (terms within one query are distinct). When
  /// `corpus_spec` is provided, queries are topical: each query picks a
  /// topic and draws most terms from it.
  QueryLog(const index::InvertedIndex& idx, const QueryLogSpec& spec,
           const SyntheticCorpusSpec* corpus_spec = nullptr);

  /// All queries with exactly `len` terms (spec.queries_per_length many).
  const std::vector<Query>& OfLength(int len) const;

  /// The complete set (the "1200 AOL queries" pool).
  std::vector<Query> All() const;

  /// The production voice-query mix: lengths drawn from a clamped
  /// discretized Gaussian(4.2, 2.96), queries uniform among that length.
  std::vector<Query> VoiceMix(int count, std::uint64_t seed) const;

  const QueryLogSpec& spec() const { return spec_; }

 private:
  QueryLogSpec spec_;
  /// by_length_[len - min_terms] = queries of that length.
  std::vector<std::vector<Query>> by_length_;
};

}  // namespace sparta::corpus

#include "corpus/scale_up.h"

#include <algorithm>
#include <cmath>

#include "corpus/synthetic.h"
#include "util/rng.h"

namespace sparta::corpus {

std::vector<EmpiricalTermStats> MeasureTermStats(
    const index::RawIndexData& base) {
  SPARTA_CHECK(base.num_docs > 0);
  std::vector<EmpiricalTermStats> stats(base.term_postings.size());
  const auto n = static_cast<double>(base.num_docs);
  for (std::size_t t = 0; t < base.term_postings.size(); ++t) {
    const auto& list = base.term_postings[t];
    stats[t].doc_rate = static_cast<double>(list.size()) / n;
    if (!list.empty()) {
      std::uint64_t total = 0;
      for (const auto& p : list) total += p.tf;
      stats[t].mean_tf =
          static_cast<double>(total) / static_cast<double>(list.size());
    }
  }
  return stats;
}

index::RawIndexData ScaleUpCorpus(const index::RawIndexData& base,
                                  const SyntheticCorpusSpec& base_spec,
                                  const ScaleUpSpec& spec) {
  SPARTA_CHECK(spec.factor >= 1);
  const auto stats = MeasureTermStats(base);

  // Empirical rates and geometric continuation probabilities:
  // mean_tf = 1 / (1 - continuation)  =>  continuation = 1 - 1/mean_tf.
  std::vector<double> rates(stats.size());
  std::vector<double> continuation(stats.size());
  for (std::size_t t = 0; t < stats.size(); ++t) {
    rates[t] = stats[t].doc_rate;
    continuation[t] = std::clamp(
        1.0 - 1.0 / std::max(1.0, stats[t].mean_tf), 0.0, 0.95);
  }
  return GenerateScaledCorpus(base_spec, base.num_docs * spec.factor,
                              rates, continuation, spec.seed);
}

}  // namespace sparta::corpus

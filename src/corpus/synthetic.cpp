#include "corpus/synthetic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/zipf.h"

namespace sparta::corpus {
namespace {

/// Base per-term repetition model: the continuation probability of the
/// geometric draw grows with term popularity (stop probability
/// 1 - F'(t)), mirroring the paper's ClueWebX10 recipe where occurrence
/// counts are "drawn from a geometric distribution with a stopping
/// probability of 1 - F(t_i)" (§5.1).
double ContinuationProbability(double doc_rate) {
  return std::min(0.55, 0.08 + 4.0 * doc_rate);
}

/// Longer documents repeat terms more often (mildly; see
/// SyntheticCorpusSpec::tf_length_pow).
double ModulatedContinuation(const SyntheticCorpusSpec& spec, double base,
                             double size_factor) {
  return std::clamp(base * std::pow(size_factor, spec.tf_length_pow), 0.02,
                    spec.max_continuation);
}

}  // namespace

std::uint32_t TermTopic(const SyntheticCorpusSpec& spec, TermId term,
                        double doc_rate) {
  if (doc_rate >= spec.global_rate_threshold || spec.num_topics == 0) {
    return kGlobalTopic;
  }
  return static_cast<std::uint32_t>(
      util::Mix64(spec.seed ^ 0x7091C5ULL ^ term) % spec.num_topics);
}

std::uint32_t DocTopic(const SyntheticCorpusSpec& spec, DocId doc) {
  if (spec.num_topics == 0) return kGlobalTopic;
  return static_cast<std::uint32_t>(
      util::Mix64(spec.seed ^ 0xD0C701CULL ^ doc) % spec.num_topics);
}

std::vector<double> DocSizeFactors(std::uint32_t num_docs, double sigma,
                                   std::uint64_t seed) {
  util::Rng rng(seed ^ 0xD0C51EFULL);
  std::vector<double> factors(num_docs);
  // exp(N(-sigma^2/2, sigma)) has mean 1, so expected document
  // frequencies stay equal to the nominal rates.
  const double mu = -0.5 * sigma * sigma;
  for (auto& f : factors) f = std::exp(rng.Gaussian(mu, sigma));
  return factors;
}

std::vector<double> MixtureSizeFactors(const SyntheticCorpusSpec& spec,
                                       std::uint32_t num_docs,
                                       std::uint64_t seed) {
  auto factors = DocSizeFactors(num_docs, spec.length_sigma, seed);
  util::Rng rng(seed ^ 0x10A6);
  for (auto& f : factors) {
    if (rng.NextDouble() < spec.long_doc_fraction) {
      f *= spec.long_doc_factor;
    }
  }
  return factors;
}

std::vector<double> TermDocRates(const SyntheticCorpusSpec& spec) {
  SPARTA_CHECK(spec.vocab_size > 0);
  auto weights =
      util::ZipfMandelbrotWeights(spec.vocab_size, spec.zipf_s, spec.zipf_q);
  // Scale so that the expected number of distinct terms per document,
  // sum_t F(t), matches mean_unique_terms — then clamp head terms.
  const double scale = spec.mean_unique_terms;
  for (auto& w : weights) {
    w = std::min(spec.max_doc_rate, w * scale);
    w = std::max(w, 0.5 / static_cast<double>(spec.num_docs));
  }
  return weights;
}

namespace {

/// Term-major generation core shared by GenerateRawCorpus and the
/// scale-up: draws each term's df documents from the size-biased
/// document pool of its topic (plus a global background) and geometric
/// tf values; document quality (keyword density) shortens the effective
/// length used for score normalization, creating the sharp score head
/// and cross-term correlation of real impact lists.
index::RawIndexData GenerateFromModel(
    const SyntheticCorpusSpec& spec, std::uint32_t num_docs,
    const std::vector<double>& rates,
    const std::vector<double>& continuation, std::uint64_t seed) {
  index::RawIndexData raw;
  raw.num_docs = num_docs;
  raw.doc_lengths.assign(num_docs, 0);
  raw.term_postings.resize(rates.size());

  const auto size_factor = MixtureSizeFactors(spec, num_docs, seed);

  // Per-topic document pools with size-biased alias samplers. All
  // occurrences — topical and background — are size-biased: longer pages
  // mention more terms. The topic structure decides *which* documents a
  // term's occurrences concentrate in (co-occurrence), while the length
  // mixture decides how they score: the bulk of every list lands on
  // long, low-scoring pages, and the sharp head is the minority of
  // short/dense pages of the term's own topic.
  const std::uint32_t topics = std::max(1u, spec.num_topics);
  std::vector<std::vector<DocId>> topic_docs(topics);
  for (DocId d = 0; d < num_docs; ++d) {
    const auto z = DocTopic(spec, d);
    topic_docs[z == kGlobalTopic ? 0 : z % topics].push_back(d);
  }
  std::vector<std::unique_ptr<util::AliasSampler>> topic_samplers(topics);
  for (std::uint32_t z = 0; z < topics; ++z) {
    if (topic_docs[z].empty()) continue;
    std::vector<double> weights;
    weights.reserve(topic_docs[z].size());
    // Topical draws use a *tempered* size bias (sqrt): longer topic
    // pages still attract more of their topic's terms, but short focused
    // pages participate too — without the tempering, one aggregator page
    // would absorb nearly all of a small pool's probability mass and
    // topical co-occurrence would collapse onto a handful of long,
    // low-scoring documents.
    for (const DocId d : topic_docs[z]) {
      weights.push_back(std::sqrt(size_factor[d]));
    }
    topic_samplers[z] = std::make_unique<util::AliasSampler>(weights);
  }
  const util::AliasSampler global_sampler(size_factor);

  util::Rng rng(seed);
  std::vector<DocId> draws;
  // Draws documents with replacement from `sample` until `target` unique
  // ids accumulate in `out` (or the distribution saturates). Plain
  // rejection would silently lose most of the targeted document
  // frequency under heavy size bias, compounding across scale-ups.
  const auto draw_unique = [&](std::size_t target, std::size_t pool_size,
                               auto&& sample, std::vector<DocId>& out) {
    target = std::min(target, pool_size * 9 / 10 + 1);
    std::size_t unique = 0;
    for (int round = 0; round < 8 && unique < target; ++round) {
      const std::size_t need = (target - unique) * 13 / 10 + 4;
      for (std::size_t i = 0; i < need; ++i) out.push_back(sample());
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      if (out.size() == unique) break;  // saturated
      unique = out.size();
    }
  };

  for (TermId t = 0; t < rates.size(); ++t) {
    const auto target_df = static_cast<std::size_t>(
        std::max(1.0, rates[t] * static_cast<double>(num_docs)));
    const auto topic = TermTopic(spec, t, rates[t]);
    const std::uint32_t z = topic == kGlobalTopic ? 0 : topic % topics;

    // Size-biased sampling: documents with a larger size factor attract
    // proportionally more terms; topical terms concentrate in their
    // topic's documents.
    draws.clear();
    draws.reserve(target_df);
    if (topic != kGlobalTopic && topic_samplers[z] != nullptr) {
      const auto topical_target = static_cast<std::size_t>(
          spec.topical_concentration * static_cast<double>(target_df));
      draw_unique(
          topical_target, topic_docs[z].size(),
          [&] { return topic_docs[z][topic_samplers[z]->Sample(rng)]; },
          draws);
    }
    const std::size_t topical_unique = draws.size();
    draw_unique(
        topical_unique + (target_df - std::min(target_df, topical_unique)),
        num_docs,
        [&] { return static_cast<DocId>(global_sampler.Sample(rng)); },
        draws);

    auto& list = raw.term_postings[t];
    list.reserve(draws.size());
    for (const DocId doc : draws) {
      const double cont =
          ModulatedContinuation(spec, continuation[t], size_factor[doc]);
      const auto tf =
          static_cast<std::uint32_t>(1 + rng.Geometric(1.0 - cont));
      list.push_back(index::RawPosting{doc, tf});
      raw.doc_lengths[doc] += tf;
    }
  }

  // Normalization lengths are set directly from the generative factors:
  // len ∝ ℓ / q, where ℓ is the size factor (how much raw text the page
  // has — the same factor that attracted background term occurrences)
  // and q the quality/keyword-density factor. Because background list
  // membership is size-biased, the *bulk* of every posting list consists
  // of long documents scoring low after length normalization, while the
  // typical (uniformly drawn) topical candidate is short and scores near
  // the ceiling — together producing the sharp-headed impact lists and
  // high Θ of real web corpora. (The raw Σtf is deliberately not used:
  // per-term dedup saturates it for huge documents, compressing exactly
  // the length spread the model needs.)
  const auto quality =
      DocSizeFactors(num_docs, spec.quality_sigma, seed ^ 0x0A11U);
  constexpr double kLengthScale = 300.0;
  for (DocId d = 0; d < num_docs; ++d) {
    const double len = kLengthScale * size_factor[d] / quality[d];
    raw.doc_lengths[d] =
        std::max(1u, static_cast<std::uint32_t>(std::lround(len)));
  }
  return raw;
}

}  // namespace

index::RawIndexData GenerateRawCorpus(const SyntheticCorpusSpec& spec) {
  const auto rates = TermDocRates(spec);
  std::vector<double> continuation(rates.size());
  for (std::size_t t = 0; t < rates.size(); ++t) {
    continuation[t] = ContinuationProbability(rates[t]);
  }
  return GenerateFromModel(spec, spec.num_docs, rates, continuation,
                           spec.seed);
}

index::RawIndexData GenerateScaledCorpus(
    const SyntheticCorpusSpec& base_spec, std::uint32_t num_docs,
    const std::vector<double>& rates,
    const std::vector<double>& continuation, std::uint64_t seed) {
  return GenerateFromModel(base_spec, num_docs, rates, continuation, seed);
}

std::string SyntheticWord(TermId t) { return "w" + std::to_string(t); }

std::vector<std::string> GenerateTextCorpus(const SyntheticCorpusSpec& spec) {
  // Document-major view of the same model (without the topic channel;
  // intended for small pipeline tests): a number of distinct-term draws
  // proportional to the document's size factor, each drawn from the
  // term-popularity distribution, repeated geometrically.
  const auto rates = TermDocRates(spec);
  const util::AliasSampler term_sampler(rates);
  double rate_sum = 0.0;
  for (const double r : rates) rate_sum += r;
  const auto size_factor =
      DocSizeFactors(spec.num_docs, spec.length_sigma, spec.seed);

  util::Rng rng(spec.seed ^ 0x7e57);
  std::vector<std::string> docs;
  docs.reserve(spec.num_docs);
  std::vector<std::string> words;
  for (std::uint32_t d = 0; d < spec.num_docs; ++d) {
    const double expected = rate_sum * size_factor[d];
    const auto distinct = static_cast<std::size_t>(std::max(
        1.0, rng.Gaussian(expected, std::sqrt(std::max(1.0, expected)))));
    words.clear();
    for (std::size_t i = 0; i < distinct; ++i) {
      const TermId t = static_cast<TermId>(term_sampler.Sample(rng));
      const double cont = ModulatedContinuation(
          spec, ContinuationProbability(rates[t]), size_factor[d]);
      const auto tf =
          static_cast<std::uint32_t>(1 + rng.Geometric(1.0 - cont));
      for (std::uint32_t r = 0; r < tf; ++r) words.push_back(SyntheticWord(t));
    }
    rng.Shuffle(words.begin(), words.end());
    std::string doc;
    doc.reserve(words.size() * 7);
    for (const auto& w : words) {
      if (!doc.empty()) doc.push_back(' ');
      doc += w;
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace sparta::corpus

// Corpus scale-up: the paper's ClueWebX10 construction (§5.1).
//
// "Each document is a bag of words drawn from the original ClueWeb
//  dictionary ... so that the number of occurrences of a term t_i with an
//  original global frequency rate of F(t_i) is drawn from a geometric
//  distribution with a stopping probability of 1 - F(t_i). This process
//  preserves the term frequency distribution of ClueWeb in ClueWebX10."
//
// We implement the same construction term-major: empirical document
// rates F(t) and mean term frequencies are *measured from the base
// corpus*, then a corpus with `factor` times as many documents is drawn
// from those empirical distributions.
#pragma once

#include "corpus/synthetic.h"
#include "index/types.h"

namespace sparta::corpus {

struct ScaleUpSpec {
  std::uint32_t factor = 10;
  std::uint64_t seed = 0xD0C5;
};

/// Empirical statistics of a base corpus, per term.
struct EmpiricalTermStats {
  double doc_rate = 0.0;   ///< df / N
  double mean_tf = 0.0;    ///< average within-document occurrences
};

std::vector<EmpiricalTermStats> MeasureTermStats(
    const index::RawIndexData& base);

/// Generates a corpus with base.num_docs * factor documents whose
/// term-frequency distribution matches the base corpus. `base_spec` is
/// the spec the base corpus was generated with (supplies the topic /
/// length / quality structure).
index::RawIndexData ScaleUpCorpus(const index::RawIndexData& base,
                                  const SyntheticCorpusSpec& base_spec,
                                  const ScaleUpSpec& spec);

}  // namespace sparta::corpus

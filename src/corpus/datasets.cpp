#include "corpus/datasets.h"

#include <cstdio>
#include <filesystem>
#include <map>

#include "corpus/scale_up.h"
#include "index/builder.h"
#include "index/disk_format.h"

namespace sparta::corpus {

DatasetSpec ClueWebSimSpec() {
  DatasetSpec spec;
  spec.name = "cw";
  spec.base.num_docs = 100'000;
  spec.base.vocab_size = 50'000;
  spec.base.seed = 0xC1173B;  // "ClueWeb"
  spec.scale_factor = 1;
  spec.page_cache_fraction = 0.8;
  // Models the heap available to per-query candidate structures (about
  // half the 24 GB machine; the rest is index mmap + JVM overhead),
  // scaled by the 1:500 document ratio: ~24 MB. Calibrated so the
  // *pattern* of the paper's out-of-memory cells reproduces: on the 10x
  // corpus the never-pruning pNRA/pJASS exceed it (modeled peaks ~33 MB)
  // while Sparta (insert cutoff + cleaner, ~7 MB), sNRA (plain per-shard
  // maps, ~19 MB) and pRA (scored-set only, ~3 MB) stay under; on the
  // base corpus everyone fits.
  spec.memory_budget_bytes = 24LL * 1024 * 1024;
  // AOL-like queries: strongly head-biased term choice over terms common
  // enough to appear in a real query log.
  spec.queries.seed = 0xA01;
  spec.queries.alpha = 1.0;
  spec.queries.min_df = 64;
  return spec;
}

DatasetSpec ClueWebX10SimSpec() {
  DatasetSpec spec = ClueWebSimSpec();
  spec.name = "cwx10";
  spec.scale_factor = 10;
  // ~300 GB of index against 24 GB of RAM.
  spec.page_cache_fraction = 0.08;
  // Same per-document scale (1M / 500M) => same absolute budget.
  spec.memory_budget_bytes = 24LL * 1024 * 1024;
  // Identical query workload as "cw" (the paper uses the same AOL
  // queries on both corpora); term ids are shared since the dictionary
  // is the base corpus's.
  spec.share_queries_with = "cw";
  return spec;
}

DatasetSpec TinySpec(std::uint32_t num_docs, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "tiny" + std::to_string(num_docs) + "s" +
              std::to_string(seed);
  spec.base.num_docs = num_docs;
  spec.base.vocab_size = std::max(200u, num_docs / 4);
  spec.base.mean_unique_terms = 30.0;
  spec.base.seed = seed;
  spec.queries.min_df = 2;
  spec.queries.queries_per_length = 20;
  return spec;
}

Dataset::Dataset(DatasetSpec spec, index::InvertedIndex idx,
                 const QueryLog* shared_queries)
    : spec_(std::move(spec)), index_(std::move(idx)) {
  queries_ = shared_queries != nullptr
                 ? std::make_unique<QueryLog>(*shared_queries)
                 : std::make_unique<QueryLog>(index_, spec_.queries, &spec_.base);
}

std::uint64_t Dataset::PageCacheBytes() const {
  return static_cast<std::uint64_t>(
      spec_.page_cache_fraction * static_cast<double>(index_.SizeBytes()));
}

namespace {

/// Bumped whenever the generator or on-disk format changes semantics, so
/// stale caches are rebuilt instead of silently reused.
constexpr std::uint32_t kGeneratorVersion = 5;

index::InvertedIndex BuildIndexFor(const DatasetSpec& spec) {
  index::RawIndexData raw = GenerateRawCorpus(spec.base);
  if (spec.scale_factor > 1) {
    ScaleUpSpec up;
    up.factor = spec.scale_factor;
    up.seed = spec.base.seed ^ 0x10;
    raw = ScaleUpCorpus(raw, spec.base, up);
  }
  return index::FinalizeIndex(std::move(raw));
}

/// Cache-file fingerprint of everything that determines index contents.
std::string SpecFingerprint(const DatasetSpec& spec) {
  std::uint64_t h = kGeneratorVersion;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(spec.base.num_docs);
  mix(spec.base.vocab_size);
  mix(spec.base.seed);
  mix(spec.scale_factor);
  mix(static_cast<std::uint64_t>(spec.base.zipf_s * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.zipf_q * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.mean_unique_terms * 1e3));
  mix(static_cast<std::uint64_t>(spec.base.max_doc_rate * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.length_sigma * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.long_doc_fraction * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.long_doc_factor * 1e3));
  mix(static_cast<std::uint64_t>(spec.base.quality_sigma * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.tf_length_pow * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.max_continuation * 1e6));
  mix(spec.base.num_topics);
  mix(static_cast<std::uint64_t>(spec.base.topical_concentration * 1e6));
  mix(static_cast<std::uint64_t>(spec.base.global_rate_threshold * 1e6));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

const Dataset& GetDataset(const DatasetSpec& spec,
                          const std::string& cache_dir) {
  static std::map<std::string, std::unique_ptr<Dataset>> registry;
  const auto it = registry.find(spec.name);
  if (it != registry.end()) return *it->second;

  std::filesystem::create_directories(cache_dir);
  const std::string path =
      cache_dir + "/" + spec.name + "-" + SpecFingerprint(spec) + ".idx";

  const QueryLog* shared = nullptr;
  if (spec.share_queries_with == "cw") {
    shared = &GetDataset(ClueWebSimSpec(), cache_dir).queries();
  } else {
    SPARTA_CHECK(spec.share_queries_with.empty());
  }

  if (auto loaded = index::LoadIndex(path)) {
    std::fprintf(stderr, "[dataset %s] loaded from %s (%u docs, %llu postings)\n",
                 spec.name.c_str(), path.c_str(), loaded->num_docs(),
                 static_cast<unsigned long long>(loaded->total_postings()));
    auto ds = std::make_unique<Dataset>(spec, std::move(*loaded), shared);
    return *registry.emplace(spec.name, std::move(ds)).first->second;
  }

  std::fprintf(stderr, "[dataset %s] building...\n", spec.name.c_str());
  index::InvertedIndex idx = BuildIndexFor(spec);
  if (!index::SaveIndex(idx, path)) {
    std::fprintf(stderr, "[dataset %s] warning: could not cache to %s\n",
                 spec.name.c_str(), path.c_str());
  }
  std::fprintf(stderr, "[dataset %s] built: %u docs, %u terms, %llu postings\n",
               spec.name.c_str(), idx.num_docs(), idx.num_terms(),
               static_cast<unsigned long long>(idx.total_postings()));
  auto ds = std::make_unique<Dataset>(spec, std::move(idx), shared);
  return *registry.emplace(spec.name, std::move(ds)).first->second;
}

}  // namespace sparta::corpus

// Synthetic web-like corpus generation.
//
// Stands in for TREC ClueWeb09B (not available offline; see DESIGN.md §1).
// The statistical properties that drive top-k algorithm dynamics are
// preserved:
//   * Zipf-Mandelbrot term popularity (document frequencies),
//   * per-document term repetitions drawn from a geometric distribution
//     whose continuation probability grows with term popularity — the
//     exact mechanism the paper uses to build ClueWebX10 (§5.1),
//   * log-normal-ish document lengths emerging from the draws, which via
//     tf-idf length normalization induce the cross-term score correlation
//     (short docs score high in all their terms) that makes score-order
//     early stopping effective on real corpora.
//
// Generation is *term-major*: posting lists are built directly, term by
// term, instead of materializing documents and inverting them. For a
// bag-of-words scoring function the two are statistically equivalent,
// and term-major is what makes million-document corpora cheap to build.
// A document-major *text* generator is also provided to exercise the
// tokenizer -> IndexBuilder pipeline in tests and examples.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "index/types.h"
#include "util/rng.h"

namespace sparta::corpus {

struct SyntheticCorpusSpec {
  std::uint32_t num_docs = 100'000;
  std::uint32_t vocab_size = 50'000;
  /// Zipf-Mandelbrot exponent / shift for term document-rates.
  double zipf_s = 1.07;
  double zipf_q = 2.7;
  /// Target mean number of *distinct* terms per document; sets the
  /// normalization of the term document-rate curve.
  double mean_unique_terms = 60.0;
  /// Cap on any single term's document rate (fraction of docs).
  double max_doc_rate = 0.20;
  /// Document sizes are a two-component mixture, reproducing the two
  /// facts about web corpora that drive top-k dynamics: (a) the typical
  /// (content) page is modest in length with a mild spread — so scores
  /// among *candidates* are discriminative rather than saturated; and
  /// (b) a minority of very long aggregator/boilerplate pages holds most
  /// of the token mass — so the size-biased *bulk of every posting list*
  /// is long, low-scoring documents. Together these yield sharp-headed
  /// impact lists: a few percent of postings score high, the rest low,
  /// which is what makes score-order early stopping effective.
  double length_sigma = 2.2;        ///< sigma of the typical-page component
  double long_doc_fraction = 0.10;  ///< share of aggregator pages
  double long_doc_factor = 60.0;    ///< their size multiplier
  /// Sigma of the log-normal per-document *quality* (keyword-density)
  /// factor: a high-quality document packs the same term occurrences
  /// into a shorter effective length, raising all of its term scores at
  /// once. This produces the sharp head of real impact lists and the
  /// cross-term score correlation that lets Θ climb quickly.
  double quality_sigma = 1.4;
  /// Topic model: topical terms concentrate their occurrences in the
  /// documents of their topic, and queries are topical (see QueryLog) —
  /// reproducing the term co-occurrence of real query logs, where the
  /// best documents contain most of the query's terms.
  std::uint32_t num_topics = 64;
  /// Fraction of a topical term's occurrences that land in its topic.
  double topical_concentration = 0.65;
  /// Exponent coupling a document's size factor to its tf draws (how
  /// much longer documents repeat terms). Kept small: large values make
  /// tf saturation cancel length normalization and flatten impact lists.
  double tf_length_pow = 0.05;
  /// Cap on the geometric continuation probability (bounds tf tails).
  double max_continuation = 0.55;
  /// Terms with a document rate at or above this are topic-free (the
  /// generic head of the vocabulary).
  double global_rate_threshold = 0.12;
  std::uint64_t seed = 0x5eedC0DE;
};

inline constexpr std::uint32_t kGlobalTopic =
    std::numeric_limits<std::uint32_t>::max();

/// Deterministic topic of a term (kGlobalTopic for the generic head);
/// pure function of the spec, so the query generator and the scale-up
/// recompute it without metadata.
std::uint32_t TermTopic(const SyntheticCorpusSpec& spec, TermId term,
                        double doc_rate);

/// Deterministic topic of a document.
std::uint32_t DocTopic(const SyntheticCorpusSpec& spec, DocId doc);

/// Per-document size factors: log-normal with mean 1.
std::vector<double> DocSizeFactors(std::uint32_t num_docs, double sigma,
                                   std::uint64_t seed);

/// The mixture size factors described at SyntheticCorpusSpec: typical
/// pages (log-normal, sigma = length_sigma) plus long aggregator pages.
std::vector<double> MixtureSizeFactors(const SyntheticCorpusSpec& spec,
                                       std::uint32_t num_docs,
                                       std::uint64_t seed);

/// Per-term document rates F(t): P[term t appears in a document].
/// Index = term id = popularity rank.
std::vector<double> TermDocRates(const SyntheticCorpusSpec& spec);

/// Builds raw posting lists directly from the statistical model.
index::RawIndexData GenerateRawCorpus(const SyntheticCorpusSpec& spec);

/// Low-level generator used by the scale-up: per-term document rates and
/// geometric continuation probabilities are given explicitly (measured
/// from the base corpus); topic/quality/length structure comes from
/// `base_spec` so the scaled corpus is statistically congruent.
index::RawIndexData GenerateScaledCorpus(
    const SyntheticCorpusSpec& base_spec, std::uint32_t num_docs,
    const std::vector<double>& rates,
    const std::vector<double>& continuation, std::uint64_t seed);

/// Document-major generator producing actual text (space-separated
/// synthetic words, word `w<t>` for term id t), for pipeline tests and
/// examples. Intended for small corpora.
std::vector<std::string> GenerateTextCorpus(const SyntheticCorpusSpec& spec);

/// Deterministic synthetic word for a term id ("w123" style).
std::string SyntheticWord(TermId t);

}  // namespace sparta::corpus

// Benchmark dataset registry.
//
// Defines the two evaluation corpora of the paper, scaled 1:500 (see
// DESIGN.md §1 for the substitution argument):
//   * "cw"    — ClueWeb09B stand-in, 100K documents;
//   * "cwx10" — its 10x scale-up built with the paper's geometric
//               procedure, 1M documents.
// Alongside each index the registry derives the simulated-machine knobs
// that scale with the corpus: the OS page-cache capacity (the paper's
// RAM/index ratio) and the modeled memory budget (24 GB scaled by the
// document ratio), which decides the OOM cells of Tables 2-4.
//
// Built indexes are cached on disk (<cache_dir>/<name>.idx) and reused
// across benchmark binaries; in-process, datasets are built once and
// shared.
#pragma once

#include <memory>
#include <string>

#include "corpus/query_log.h"
#include "corpus/synthetic.h"
#include "index/inverted_index.h"

namespace sparta::corpus {

struct DatasetSpec {
  std::string name;
  SyntheticCorpusSpec base;
  /// 1 = use the base corpus; >1 = apply the paper's scale-up procedure.
  std::uint32_t scale_factor = 1;
  /// Page-cache capacity as a fraction of the index size (paper: CW's
  /// 30 GB index mostly fits the 24 GB RAM; CWX10's ~300 GB does not).
  double page_cache_fraction = 0.8;
  /// Modeled per-query memory budget (24 GB scaled by document ratio).
  std::int64_t memory_budget_bytes = 48LL * 1024 * 1024;
  QueryLogSpec queries;
  /// When set, reuse the query log of the named dataset (the paper runs
  /// the same AOL queries on ClueWeb and ClueWebX10; term ids are shared
  /// because the scale-up keeps the base dictionary).
  std::string share_queries_with;
};

/// The ClueWeb09B stand-in ("cw").
DatasetSpec ClueWebSimSpec();
/// The ClueWebX10 stand-in ("cwx10").
DatasetSpec ClueWebX10SimSpec();
/// A small corpus for tests/examples (builds in milliseconds).
DatasetSpec TinySpec(std::uint32_t num_docs = 2000, std::uint64_t seed = 7);

class Dataset {
 public:
  Dataset(DatasetSpec spec, index::InvertedIndex idx,
          const QueryLog* shared_queries = nullptr);

  const DatasetSpec& spec() const { return spec_; }
  const index::InvertedIndex& index() const { return index_; }
  const QueryLog& queries() const { return *queries_; }

  /// Page-cache capacity in bytes for the simulated machine.
  std::uint64_t PageCacheBytes() const;

 private:
  DatasetSpec spec_;
  index::InvertedIndex index_;
  std::unique_ptr<QueryLog> queries_;
};

/// Builds (or loads from `cache_dir`) the dataset; instances are shared
/// within the process. Thread-compatible: call from one thread.
const Dataset& GetDataset(const DatasetSpec& spec,
                          const std::string& cache_dir = "data");

}  // namespace sparta::corpus

#include "corpus/query_log.h"

#include <algorithm>
#include <memory>
#include <cmath>
#include <unordered_set>

#include "util/zipf.h"

namespace sparta::corpus {

QueryLog::QueryLog(const index::InvertedIndex& idx, const QueryLogSpec& spec,
                   const SyntheticCorpusSpec* corpus_spec)
    : spec_(spec) {
  SPARTA_CHECK(spec.min_terms >= 1 && spec.max_terms >= spec.min_terms);

  // Candidate terms and their popularity weights, globally and (when the
  // corpus has topic structure) per topic.
  struct Pool {
    std::vector<TermId> terms;
    std::vector<double> weights;
    std::unique_ptr<util::AliasSampler> sampler;
    void Finish() {
      if (!terms.empty()) {
        sampler = std::make_unique<util::AliasSampler>(weights);
      }
    }
    TermId Sample(util::Rng& rng) const {
      return terms[sampler->Sample(rng)];
    }
  };
  Pool global;
  std::vector<Pool> topical;
  std::vector<double> rates;
  if (corpus_spec != nullptr && corpus_spec->num_topics > 0) {
    topical.resize(corpus_spec->num_topics);
    rates = TermDocRates(*corpus_spec);
  }
  for (TermId t = 0; t < idx.num_terms(); ++t) {
    const auto df = idx.Entry(t).df;
    if (df < spec.min_df) continue;
    const double w = std::pow(static_cast<double>(df), spec.alpha);
    std::uint32_t topic = kGlobalTopic;
    if (!topical.empty() && t < rates.size()) {
      topic = TermTopic(*corpus_spec, t, rates[t]);
    }
    if (topic == kGlobalTopic) {
      global.terms.push_back(t);
      global.weights.push_back(w);
    } else {
      topical[topic].terms.push_back(t);
      topical[topic].weights.push_back(w);
    }
  }
  global.Finish();
  for (auto& pool : topical) pool.Finish();
  SPARTA_CHECK_MSG(global.terms.size() >=
                       static_cast<std::size_t>(spec.max_terms),
                   "vocabulary too small for the requested query lengths");

  util::Rng rng(spec.seed);
  by_length_.resize(
      static_cast<std::size_t>(spec.max_terms - spec.min_terms + 1));
  for (int len = spec.min_terms; len <= spec.max_terms; ++len) {
    auto& bucket = by_length_[static_cast<std::size_t>(len - spec.min_terms)];
    bucket.reserve(static_cast<std::size_t>(spec.queries_per_length));
    for (int q = 0; q < spec.queries_per_length; ++q) {
      // Each query is about one topic; most terms come from it, the
      // rest from the generic head (as in real logs: "cheap flights
      // tokyo" = generic terms + topical terms).
      const Pool* topic_pool = nullptr;
      if (!topical.empty()) {
        for (int attempt = 0; attempt < 16 && topic_pool == nullptr;
             ++attempt) {
          const auto& candidate = topical[rng.Below(topical.size())];
          if (candidate.terms.size() >=
              static_cast<std::size_t>(spec.max_terms)) {
            topic_pool = &candidate;
          }
        }
      }
      Query query;
      std::unordered_set<TermId> used;
      int stall = 0;
      while (query.size() < static_cast<std::size_t>(len)) {
        const bool pick_topical =
            topic_pool != nullptr &&
            rng.NextDouble() < spec.topical_fraction;
        const TermId t =
            pick_topical ? topic_pool->Sample(rng) : global.Sample(rng);
        if (used.insert(t).second) {
          query.push_back(t);
          stall = 0;
        } else if (++stall > 1000) {
          // Pathologically small pools: fall back to a global pick.
          const TermId g = global.Sample(rng);
          if (used.insert(g).second) query.push_back(g);
          stall = 0;
        }
      }
      bucket.push_back(std::move(query));
    }
  }
}

const std::vector<Query>& QueryLog::OfLength(int len) const {
  SPARTA_CHECK(len >= spec_.min_terms && len <= spec_.max_terms);
  return by_length_[static_cast<std::size_t>(len - spec_.min_terms)];
}

std::vector<Query> QueryLog::All() const {
  std::vector<Query> all;
  for (const auto& bucket : by_length_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

std::vector<Query> QueryLog::VoiceMix(int count, std::uint64_t seed) const {
  // Voice-query length distribution from Guy [SIGIR'16]: mean 4.2,
  // stddev 2.96, and "more than 5% of voice search queries exceed 10
  // terms". A symmetric Gaussian cannot satisfy both, so lengths are
  // drawn from a right-skewed mixture: a verbose component uniform over
  // [10, max] with probability 5.5%, and a Gaussian body otherwise —
  // matching all three reported statistics after clamping.
  util::Rng rng(seed);
  std::vector<Query> mix;
  mix.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int len;
    if (spec_.max_terms >= 10 && rng.NextDouble() < 0.055) {
      len = 10 + static_cast<int>(
                     rng.Below(static_cast<std::uint64_t>(
                         spec_.max_terms - 10 + 1)));
    } else {
      const double raw = rng.Gaussian(3.85, 2.5);
      len = std::clamp(static_cast<int>(std::lround(raw)),
                       spec_.min_terms, std::min(9, spec_.max_terms));
    }
    const auto& bucket = OfLength(len);
    mix.push_back(bucket[rng.Below(bucket.size())]);
  }
  return mix;
}

}  // namespace sparta::corpus

#include "text/vocabulary.h"

#include <fstream>

namespace sparta::text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  const util::SerialGuard guard(domain_);
  const auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

std::optional<TermId> Vocabulary::Lookup(std::string_view term) const {
  const util::SerialGuard guard(domain_);
  const auto it = ids_.find(std::string(term));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  const util::SerialGuard guard(domain_);
  SPARTA_CHECK(id < terms_.size());
  return terms_[id];
}

bool Vocabulary::SaveToFile(const std::string& path) const {
  const util::SerialGuard guard(domain_);
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& term : terms_) out << term << '\n';
  return static_cast<bool>(out);
}

std::optional<Vocabulary> Vocabulary::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Vocabulary vocab;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) vocab.GetOrAdd(line);
  }
  return vocab;
}

}  // namespace sparta::text

// Text analysis: tokenization and stop-word filtering.
//
// Plays the role Lucene's analyzer plays in the paper's preprocessing
// pipeline (§5.1): lowercasing, alphanumeric token splitting, and optional
// stop-word removal. Query-time and index-time analysis must agree, so
// both go through the same Tokenizer instance.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace sparta::text {

struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  std::size_t min_token_length = 1;
  /// Drop tokens longer than this (protects the index from binary junk).
  std::size_t max_token_length = 64;
  /// Remove English stop words ("the", "of", ...).
  bool remove_stopwords = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Splits `input` into lowercase alphanumeric tokens, applying length
  /// and stop-word filters.
  std::vector<std::string> Tokenize(std::string_view input) const;

  /// True if `token` (already lowercase) is a stop word under the current
  /// options.
  bool IsStopword(std::string_view token) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string_view> stopwords_;
};

}  // namespace sparta::text

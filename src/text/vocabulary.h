// Vocabulary: bidirectional term <-> dense TermId mapping.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/common.h"
#include "util/serial_domain.h"
#include "util/thread_annotations.h"

namespace sparta::text {

/// Mutated only during single-threaded index builds and lookups; the
/// SerialDomain capability makes that contract checkable (queries must
/// resolve terms to ids before fanning out to workers).
class Vocabulary {
 public:
  /// Returns the id of `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term` if present.
  std::optional<TermId> Lookup(std::string_view term) const;

  /// Returns the string for a valid id.
  const std::string& TermOf(TermId id) const;

  std::size_t size() const {
    const util::SerialGuard guard(domain_);
    return terms_.size();
  }

  /// Plain-text persistence: one term per line, id = line number.
  /// Companion to the binary index file (which stores ids only).
  /// Iterates terms_ (insertion-ordered vector), never ids_ — the
  /// on-disk order is deterministic by construction.
  bool SaveToFile(const std::string& path) const;
  static std::optional<Vocabulary> LoadFromFile(const std::string& path);

 private:
  mutable util::SerialDomain domain_;
  std::unordered_map<std::string, TermId> ids_ SPARTA_GUARDED_BY(domain_);
  std::vector<std::string> terms_ SPARTA_GUARDED_BY(domain_);
};

}  // namespace sparta::text

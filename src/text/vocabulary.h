// Vocabulary: bidirectional term <-> dense TermId mapping.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace sparta::text {

class Vocabulary {
 public:
  /// Returns the id of `term`, interning it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id of `term` if present.
  std::optional<TermId> Lookup(std::string_view term) const;

  /// Returns the string for a valid id.
  const std::string& TermOf(TermId id) const;

  std::size_t size() const { return terms_.size(); }

  /// Plain-text persistence: one term per line, id = line number.
  /// Companion to the binary index file (which stores ids only).
  bool SaveToFile(const std::string& path) const;
  static std::optional<Vocabulary> LoadFromFile(const std::string& path);

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace sparta::text

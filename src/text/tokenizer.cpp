#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace sparta::text {
namespace {

// The classic English stop-word list used by Lucene's StandardAnalyzer.
constexpr std::array<std::string_view, 33> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",  "by",
    "for",  "if",   "in",   "into", "is",   "it",   "no",   "not",  "of",
    "on",   "or",   "such", "that", "the",  "their", "then", "there",
    "these", "they", "this", "to",  "was",  "will", "with"};

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  if (options_.remove_stopwords) {
    stopwords_.insert(kStopwords.begin(), kStopwords.end());
  }
}

bool Tokenizer::IsStopword(std::string_view token) const {
  return stopwords_.contains(token);
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<std::string> tokens;
  std::string current;
  current.reserve(16);

  auto flush = [&] {
    if (current.size() >= options_.min_token_length &&
        current.size() <= options_.max_token_length &&
        !IsStopword(current)) {
      tokens.push_back(current);
    }
    current.clear();
  };

  for (const char raw : input) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      flush();
    }
  }
  if (!current.empty()) flush();
  return tokens;
}

}  // namespace sparta::text

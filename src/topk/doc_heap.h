// Bounded top-k heap with threshold Θ.
//
// The classic IR structure (§3): a min-heap of the best k documents seen
// so far, whose minimum is the threshold Θ — any document that cannot
// beat Θ is not a top-k candidate. Θ is published through an atomic so
// workers can read it without taking the heap lock; all mutations happen
// under the owner's lock (a CtxLock in parallel algorithms).
#pragma once

#include <atomic>
#include <vector>

#include "topk/result.h"
#include "util/common.h"
#include "util/racy.h"

namespace sparta::topk {

/// Heap ordering: by score, ties broken by doc id (larger doc id is
/// "worse", making the contents deterministic for a given input).
struct HeapEntry {
  Score score = 0;
  DocId doc = kInvalidDoc;

  friend bool operator==(const HeapEntry&, const HeapEntry&) = default;
};

inline bool WorseThan(const HeapEntry& a, const HeapEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.doc > b.doc;
}

class TopKHeap {
 public:
  explicit TopKHeap(int k);

  // Movable (atomics transferred by value) so heaps can live in vectors.
  TopKHeap(TopKHeap&& other) noexcept
      : k_(other.k_),
        heap_(std::move(other.heap_)),
        threshold_(other.threshold_.load(std::memory_order_relaxed)) {}
  TopKHeap& operator=(TopKHeap&& other) noexcept {
    k_ = other.k_;
    heap_ = std::move(other.heap_);
    threshold_.store(other.threshold_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  /// Inserts if the heap has room or `e` beats the current minimum.
  /// Returns true if the heap changed.
  bool Insert(HeapEntry e);

  /// Θ: the k-th (lowest) score once the heap is full, else 0 (§3).
  Score threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  bool Contains(DocId doc) const;
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == static_cast<std::size_t>(k_); }
  int k() const { return k_; }

  /// Merges another heap's contents (shard-merge step of sNRA / pBMW).
  void Merge(const TopKHeap& other);

  /// Contents in canonical (descending) order.
  std::vector<ResultEntry> Extract() const;

  const std::vector<HeapEntry>& raw() const { return heap_; }

 private:
  void UpdateThreshold();

  int k_;
  std::vector<HeapEntry> heap_;  // min-heap via WorseThan
  /// Racy<> by design: Θ is published lock-free so workers can prune
  /// without taking the heap owner's lock (§3); readers tolerate stale
  /// values (a stale Θ only admits extra candidates, never drops one).
  /// Owners holding the heap under a CtxLock register the benign range
  /// themselves (e.g. "sparta.updTime" neighbors in core/sparta.cpp).
  util::Racy<std::atomic<Score>> threshold_{0};
};

}  // namespace sparta::topk

// Search parameters shared by all algorithms.
#pragma once

#include <cstdint>

#include "exec/context.h"
#include "obs/trace.h"
#include "util/common.h"

namespace sparta::topk {

/// Observer of heap updates, used to reconstruct recall-over-time curves
/// (paper Figs. 3f-3g). Implementations must be safe to call under the
/// algorithm's heap lock.
class HeapTracer {
 public:
  virtual ~HeapTracer() = default;
  /// `score` is the document's current (lower-bound or full) score at the
  /// moment it enters/moves in a heap.
  virtual void OnHeapUpdate(exec::VirtualTime time, DocId doc,
                            Score score) = 0;
};

struct SearchParams {
  /// Result-set size. The paper uses k = 1000 (k = 100 "qualitatively
  /// similar", §5.1).
  int k = 100;

  /// Approximation knob of the TA family (Sparta, pRA, pNRA, sNRA):
  /// stop once the heap has not changed for `delta` ns. kNever = exact.
  exec::VirtualTime delta = exec::kNever;

  /// Per-query latency budget relative to query start (kNever = none).
  /// When it expires the algorithms finalize with their best-so-far
  /// top-k and tag the result ResultStatus::kDeadlineDegraded. Applied
  /// to the execution context by Algorithm::Run and the bench driver.
  exec::VirtualTime deadline = exec::kNever;

  /// pBMW threshold-relaxation factor (f >= 1; 1 = exact), §5.2.1.
  double f = 1.0;

  /// pJASS fraction of postings to scan (p in (0, 1]; 1 = exact), §5.2.1.
  double p = 1.0;

  /// Posting-list segment length per job (Sparta, pJASS, TA variants).
  std::uint32_t seg_size = 1024;

  /// docMap size threshold below which Sparta workers build their local
  /// termMap replicas; the paper uses 10K entries (§4.3).
  std::size_t phi = 10'000;

  /// Optional heap-update observer for recall-dynamics experiments.
  HeapTracer* tracer = nullptr;

  /// Algorithm-level span tracing (postings scans, heap updates, cleaner
  /// passes, merges). Spans are only recorded when the executor also has
  /// tracing on (SimConfig::trace / ThreadedExecutor::Options::trace),
  /// which creates the sink; this knob lets a caller keep machine-level
  /// tracing while muting the much larger algorithm-level volume.
  obs::TraceConfig trace;
};

}  // namespace sparta::topk

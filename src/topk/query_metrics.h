// QueryStats consistency checks and metrics-registry accumulation.
//
// The drivers aggregate QueryStats from every algorithm and executor
// combination; accounting drift there (a baseline double-counting
// postings, a negative latency from clock misuse) silently poisons
// whole result tables. ValidateQueryStats makes the invariants explicit
// and is asserted at driver aggregation time; AccumulateQueryStats folds
// one query's stats into an obs::MetricsRegistry so serving-level
// reporting can pull a single snapshot.
#pragma once

#include "obs/metrics.h"
#include "topk/result.h"

namespace sparta::topk {

/// True iff the stats satisfy the cross-field invariants:
///   * postings_processed <= postings_total whenever a total is reported;
///   * latency and queue_wait are non-negative;
///   * PostingsFraction() lands in [0, 1].
bool ConsistentQueryStats(const QueryStats& stats);

/// SPARTA_CHECK-asserts ConsistentQueryStats with a field dump on
/// failure. `where` names the aggregation site (algorithm / driver loop).
void ValidateQueryStats(const QueryStats& stats, const char* where);

/// Folds one query's stats into the registry: `query.count` counter,
/// per-field counters (postings processed/total, heap inserts, random
/// accesses, io retries, faults) and latency/queue-wait/postings-fraction
/// histograms.
void AccumulateQueryStats(const QueryStats& stats,
                          obs::MetricsRegistry& registry);

}  // namespace sparta::topk

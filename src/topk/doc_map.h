// Document maps: the candidate bookkeeping of the NRA family (§4.1).
//
//   * DocType          — per-document record: observed term scores, lower
//                        bound, heap membership.
//   * ConcurrentDocMap — the shared docMap: striped hashing with a
//                        granular lock per stripe (the paper protects
//                        "each hash bucket by a granular lock", §4.3).
//   * LocalDocMap      — an unsynchronized partial copy: Sparta's
//                        termMap replicas and the cleaner's tmpDocMap.
//
// Memory accounting: entry footprints are *modeled* after the paper's
// Java implementation (object headers + boxed map nodes), so the memory
// budget that decides the "crashed due to lack of memory" cells scales
// like the original system rather than like our leaner C++ structs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "exec/context.h"
#include "topk/result.h"
#include "util/common.h"
#include "util/thread_annotations.h"

namespace sparta::topk {

/// Shared per-term score upper bounds (UB[m] of the paper). Entries are
/// written only by the worker that owns the term's posting list; padding
/// would reduce simulated ping-pong, but the paper's layout is a plain
/// array, so we keep one (coherence effects are part of the study).
// sparta-lint: allow(padded-shared) deliberately compact: the paper's
// UB[m] is an unpadded array and its false sharing is under study.
using UpperBounds = std::vector<std::atomic<Score>>;

/// Sum of all term upper bounds (left side of UBStop, Eq. 1).
Score SumUpperBounds(const UpperBounds& ub);

/// The paper's DocType: <id, score[m], LB> plus a heap-membership flag.
/// score[i] is written only by the worker currently owning term i; LB is
/// refreshed lazily under the heap lock (§4.3).
class DocType {
 public:
  DocType(DocId id, int num_terms);

  DocType(const DocType&) = delete;
  DocType& operator=(const DocType&) = delete;

  DocId id() const { return id_; }

  // Hot fields, accessed directly by algorithms.
  std::atomic<Score> lb{0};
  std::atomic<bool> in_heap{false};
  /// Term scores observed so far (0 = not yet seen). Index = query term
  /// position, not global TermId.
  // sparta-lint: allow(padded-shared) deliberately compact: per-doc
  // score slots mirror the paper's accumulator layout; padding every
  // entry would distort the modeled memory footprint (§5.2.1).
  std::vector<std::atomic<Score>> score;

  /// Σ score[i] (the document's current lower bound, recomputed).
  Score SumScores() const;

  /// UB(D) = Σ (score[i] > 0 ? score[i] : UB[i])  (§4.1, Table 1).
  Score UpperBound(const UpperBounds& ub) const;

 private:
  DocId id_;
};

/// Modeled per-entry footprint (bytes) of the paper's Java maps.
std::int64_t ModeledEntryBytes(int num_terms, bool concurrent);

/// One buffered term-score contribution, produced by a worker's private
/// accumulator during a phase and applied to the shared map at the phase
/// boundary (DESIGN.md §14). `term` is the query-term position (the
/// score-slot index; ignored by presence-set consumers).
struct PendingScore {
  DocId doc = kInvalidDoc;
  std::int32_t term = 0;
  Score score = 0;
};

/// Striped concurrent hash map DocId -> DocType*, owning the DocType
/// storage (arena per stripe; entries live until the map is destroyed,
/// which lets cleaner snapshots hold raw pointers safely).
class ConcurrentDocMap {
 public:
  static constexpr int kStripes = 64;

  /// `num_terms` sizes each DocType's score vector (0 for accumulator
  /// maps like pJASS's). `modeled_entry_bytes` overrides the default
  /// Java-footprint model (pJASS's per-document lock objects make its
  /// entries heavier); 0 keeps the default. The stripe locks are
  /// registered with the contention profiler as "docMap.stripe" — the
  /// structure at the heart of the paper's Sparta-vs-pRA scaling story.
  ConcurrentDocMap(exec::QueryContext& ctx, int num_terms,
                   std::int64_t modeled_entry_bytes = 0);

  struct GetOrCreateResult {
    DocType* doc = nullptr;
    bool inserted = false;
    /// True if the memory budget was exceeded; the caller must stop
    /// accumulating and finalize a best-so-far result tagged
    /// ResultStatus::kOom.
    bool oom = false;
  };

  /// Finds or inserts the document. Locks the stripe.
  GetOrCreateResult GetOrCreate(DocId doc, exec::WorkerContext& worker);

  /// Lookup without insertion. Locks the stripe while the map is still
  /// write-shared.
  DocType* Find(DocId doc, exec::WorkerContext& worker);

  /// Accumulator update (JASS family): get-or-create the document and
  /// add `delta` to its running score under the stripe lock, modeling
  /// the paper's "each document is protected by a lock" (§5.2.1) with
  /// granular striping.
  GetOrCreateResult AddScore(DocId doc, Score delta,
                             exec::WorkerContext& worker);

  /// Per-doc-group callback of ApplyBatch, invoked under the stripe lock
  /// once per distinct document: the group's buffered contributions, the
  /// (found or created) entry, and whether this batch inserted it. The
  /// sink applies the contributions (slot stores, lb adds) so the merge
  /// semantics stay with the algorithm, not the map.
  using ApplySink = std::function<void(std::span<const PendingScore>,
                                       DocType*, bool inserted)>;

  struct BatchResult {
    /// Doc groups resolved to an entry (found, or inserted pre-cutoff).
    std::size_t applied = 0;
    /// Doc groups refused: unseen documents arriving after the insert
    /// cutoff. Safe to drop — by then Σ UB ≤ Θ bounds them out of the
    /// top-k (the batched twin of GetOrCreate's post-freeze refusal).
    std::size_t refused = 0;
    bool oom = false;
  };

  /// Phase-boundary merge: applies a stripe-homogeneous batch (every
  /// entry hashes to the same stripe; doc groups contiguous) under ONE
  /// stripe-lock acquisition — the Corey-style contention win: a
  /// 1024-posting segment costs at most kStripes acquisitions instead of
  /// one per posting. Honors the insert cutoff/freeze protocol exactly
  /// like GetOrCreate. On memory exhaustion stops mid-batch with
  /// oom=true; everything applied so far stays (honest kOom partials).
  BatchResult ApplyBatch(std::span<const PendingScore> batch,
                         exec::WorkerContext& worker,
                         const ApplySink& sink);

  /// Stripe of a document — public so private accumulators can group
  /// their buffered contributions into stripe-homogeneous batches.
  static std::size_t StripeOf(DocId doc);

  /// Home NUMA domain of a stripe (id-based round placement, so the
  /// stripe→domain key is identical on every run and allocator layout).
  int StripeHomeDomain(std::size_t stripe) const {
    return stripes_[stripe].home_domain;
  }

  std::size_t Size() const {
    return size_.load(std::memory_order_relaxed);
  }
  std::uint64_t PeakSize() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes, for the cache-level cost model.
  std::size_t ApproxBytes() const;

  /// Marks the insert phase over (UBStop reached) while workers may
  /// still be mid-insert: sets the insert cutoff, then drains every
  /// stripe lock (acquire+release) so in-flight critical sections
  /// complete, then publishes the frozen flag. Unlocked scans gated on
  /// read_only() are race-free only because the flag is published
  /// *after* the drain (found by TSan on the pre-drain protocol).
  void Freeze(exec::WorkerContext& worker);

  /// Quiescent freeze: valid only when no mutator can be in flight
  /// (e.g. between test phases after a full drain). Skips the stripe
  /// drain.
  void SetReadOnly() {
    insert_cutoff_.store(true, std::memory_order_release);
    frozen_.store(true, std::memory_order_release);
  }

  bool read_only() const {
    return frozen_.load(std::memory_order_acquire);
  }

  /// Iterates all entries. Only valid once read-only.
  //
  // TSA-exempt: reads stripe maps without their locks. Safe only because
  // the SPARTA_CHECK proves the freeze protocol ran — Freeze() drained
  // every stripe lock before publishing frozen_, so all inserts
  // happened-before this scan.
  template <typename Fn>
  void ForEach(Fn&& fn) const SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    SPARTA_CHECK(read_only());
    for (const auto& stripe : stripes_) {
      // sparta-lint: allow(unordered-iter) order-insensitive: consumers
      // fold into a TopKHeap (strict total order on (score, doc)).
      for (const auto& [id, doc] : stripe.map) fn(doc);
    }
  }

  /// Race-detector-visible variant of the unlocked scan. When the map is
  /// frozen, each stripe lock's release clock is acquired first
  /// (AnnotateAcquire) — the freeze protocol guarantees every insert's
  /// critical section happened-before the scan, which the detector can't
  /// see through the read_only_ atomic alone (DESIGN.md §6). Calling this
  /// before SetReadOnly() records unsynchronized reads the detector will
  /// flag against the stripe inserts — deliberately no SPARTA_CHECK here;
  /// misuse surfaces as a race report instead of a crash.
  // TSA-exempt for the same freeze-protocol reason as ForEach(fn); the
  // AnnotateAcquire calls express the happens-before edge to the dynamic
  // detector, which — unlike the static analysis — verifies it.
  template <typename Fn>
  void ForEach(Fn&& fn, exec::WorkerContext& worker) const
      SPARTA_NO_THREAD_SAFETY_ANALYSIS {
    const bool frozen = read_only();
    for (const auto& stripe : stripes_) {
      if (frozen) worker.AnnotateAcquire(stripe.lock.get());
      worker.ShadowAccess(&stripe.map, exec::AccessKind::kRead);
      // sparta-lint: allow(unordered-iter) order-insensitive: consumers
      // fold into a TopKHeap (strict total order on (score, doc)).
      for (const auto& [id, doc] : stripe.map) fn(doc);
    }
  }

  /// Iterates all entries stripe-by-stripe under the stripe locks; safe
  /// while the map is still being mutated (pNRA's stopping scan).
  template <typename Fn>
  void ForEachLocked(Fn&& fn, exec::WorkerContext& worker) {
    for (auto& stripe : stripes_) {
      const exec::CtxLockGuard guard(*stripe.lock, worker);
      worker.ShadowAccess(&stripe.map, exec::AccessKind::kRead);
      // sparta-lint: allow(unordered-iter) order-insensitive: consumers
      // fold into a TopKHeap (strict total order on (score, doc)).
      for (const auto& [id, doc] : stripe.map) fn(doc);
    }
  }

  int num_terms() const { return num_terms_; }

 private:
  struct Stripe {
    std::unique_ptr<exec::CtxLock> lock;
    std::unordered_map<DocId, DocType*> map SPARTA_GUARDED_BY(*lock);
    std::deque<DocType> arena SPARTA_GUARDED_BY(*lock);
    /// NUMA domain whose memory backs this stripe (0 without topology).
    int home_domain = 0;
  };

  bool insert_cutoff() const {
    return insert_cutoff_.load(std::memory_order_acquire);
  }

  int num_terms_;
  std::int64_t entry_bytes_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> peak_{0};
  /// Inserts stop (checked under the stripe lock)...
  std::atomic<bool> insert_cutoff_{false};
  /// ...and once the stripes are drained, unlocked scans may start.
  std::atomic<bool> frozen_{false};
  std::vector<Stripe> stripes_;
};

/// Unsynchronized map of DocType references: termMap / tmpDocMap.
class LocalDocMap {
 public:
  explicit LocalDocMap(int num_terms)
      : entry_bytes_(ModeledEntryBytes(num_terms, /*concurrent=*/false)) {}

  void Reserve(std::size_t n) { map_.reserve(n); }

  /// Returns false if the memory budget was exceeded.
  [[nodiscard]] bool Add(DocType* doc, exec::WorkerContext& worker);

  DocType* Find(DocId doc, exec::WorkerContext& worker) const;

  std::size_t Size() const { return map_.size(); }
  std::size_t ApproxBytes() const;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // sparta-lint: allow(unordered-iter) order-insensitive: every
    // consumer folds accumulators into a TopKHeap, whose admission is
    // a strict total order on (score, doc) — any visit order yields
    // the same top-k set.
    for (const auto& [id, doc] : map_) fn(doc);
  }

  /// Releases the modeled memory of this map (called when a snapshot is
  /// retired by the cleaner's pointer swing).
  void ReleaseModeledMemory(exec::WorkerContext& worker);

 private:
  std::int64_t entry_bytes_;
  bool memory_released_ = false;
  std::unordered_map<DocId, DocType*> map_;
};

}  // namespace sparta::topk

#include "topk/oracle.h"

#include <algorithm>

namespace sparta::topk {

ExactTopK ComputeExactTopK(const index::InvertedIndex& idx,
                           std::span<const TermId> terms, int k) {
  SPARTA_CHECK(k > 0);
  // Dense accumulator + touched list: O(total postings) with two passes.
  std::vector<Score> acc(idx.num_docs(), 0);
  std::vector<DocId> touched;
  for (const TermId t : terms) {
    for (const index::Posting& p : idx.Term(t).doc_order) {
      if (acc[p.doc] == 0) touched.push_back(p.doc);
      acc[p.doc] += static_cast<Score>(p.score);
    }
  }

  std::vector<ResultEntry> all;
  all.reserve(touched.size());
  for (const DocId d : touched) all.push_back({d, acc[d]});
  CanonicalizeResult(all);

  ExactTopK out;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k), all.size());
  out.topk.assign(all.begin(), all.begin() + static_cast<long>(take));
  out.kth_score = take == static_cast<std::size_t>(k)
                      ? out.topk.back().score
                      : 0;
  for (std::size_t i = take; i < all.size(); ++i) {
    if (all[i].score != out.kth_score) break;
    out.boundary.push_back(all[i].doc);
  }
  return out;
}

}  // namespace sparta::topk

// Query results and per-query statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"
#include "util/common.h"

namespace sparta::topk {

struct ResultEntry {
  DocId doc = kInvalidDoc;
  /// For exact/RA-style algorithms the full document score; for
  /// NRA-style algorithms the lower bound at termination.
  Score score = 0;

  friend bool operator==(const ResultEntry&, const ResultEntry&) = default;
};

enum class Status : std::uint8_t {
  kOk,
  /// The query exceeded its modeled memory budget — the reproduction of
  /// the paper's "N/A: crashed due to lack of memory" outcomes.
  kOutOfMemory,
};

struct QueryStats {
  std::uint64_t postings_processed = 0;
  std::uint64_t heap_inserts = 0;
  std::uint64_t docmap_peak_entries = 0;
  std::uint64_t random_accesses = 0;
  /// Filled by the driver: end_time - start_time on the executor clock.
  exec::VirtualTime latency = 0;
};

struct SearchResult {
  Status status = Status::kOk;
  /// Sorted by decreasing score, ties by increasing doc.
  std::vector<ResultEntry> entries;
  QueryStats stats;

  bool ok() const { return status == Status::kOk; }
};

/// Sorts entries into canonical order (decreasing score, increasing doc).
void CanonicalizeResult(std::vector<ResultEntry>& entries);

}  // namespace sparta::topk

// Query results and per-query statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/context.h"
#include "util/common.h"

namespace sparta::topk {

struct ResultEntry {
  DocId doc = kInvalidDoc;
  /// For exact/RA-style algorithms the full document score; for
  /// NRA-style algorithms the lower bound at termination.
  Score score = 0;

  friend bool operator==(const ResultEntry&, const ResultEntry&) = default;
};

/// How a query ended. Every status except kComplete still carries the
/// best-so-far top-k (anytime semantics): entries are never discarded,
/// only honestly labeled.
enum class ResultStatus : std::uint8_t {
  /// Ran to its normal stopping condition.
  kComplete,
  /// The deadline fired first; entries are the heap at that moment.
  kDeadlineDegraded,
  /// An injected fault escalated past its retry budget; entries are the
  /// heap at the escalation point.
  kPartialAfterFault,
  /// The query exceeded its modeled memory budget — the reproduction of
  /// the paper's "N/A: crashed due to lack of memory" outcomes, now with
  /// the partial top-k retained so achieved recall is still reportable.
  kOom,
  /// Scatter-gather merge over a sharded cluster in which one or more
  /// shards never answered (crash, partition, exhausted retries).
  /// Entries are the honest merge of the shards that did answer;
  /// QueryStats::shard_coverage says how much of the corpus they span.
  /// Appended (not inserted) so pre-cluster statuses keep their codes.
  kShardsDegraded,
};

/// Legacy alias from when the enum had only kOk/kOutOfMemory.
using Status = ResultStatus;

/// What the serving layer's admission control decided for a query. Every
/// query measured through the open-loop driver carries one of these so
/// per-query accounting (and the CSV output built from it) distinguishes
/// answered traffic from traffic turned away at the door.
enum class AdmissionOutcome : std::uint8_t {
  /// Entered the admission queue and was served (possibly degraded).
  kAdmitted,
  /// Bounced at arrival: the bounded admission queue was full.
  kRejectedFull,
  /// Shed at arrival: the estimated queue wait already forfeited the
  /// end-to-end SLO, so serving it would have been wasted work.
  kShedPredictedWait,
  /// Dropped because the circuit breaker was open (or half-open and the
  /// probe slot was taken).
  kBreakerDropped,
};

constexpr const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kRejectedFull:
      return "rejected";
    case AdmissionOutcome::kShedPredictedWait:
      return "shed";
    case AdmissionOutcome::kBreakerDropped:
      return "breaker-dropped";
  }
  return "unknown";
}

/// Maps a worker-side stop cause to the result status it implies.
constexpr ResultStatus StatusFromStopCause(exec::StopCause cause) {
  switch (cause) {
    case exec::StopCause::kDeadline:
      return ResultStatus::kDeadlineDegraded;
    case exec::StopCause::kFault:
      return ResultStatus::kPartialAfterFault;
    case exec::StopCause::kNone:
      break;
  }
  return ResultStatus::kComplete;
}

struct QueryStats {
  std::uint64_t postings_processed = 0;
  /// Total postings of the query's terms — the denominator of
  /// PostingsFraction(). 0 when the algorithm does not report it.
  std::uint64_t postings_total = 0;
  std::uint64_t heap_inserts = 0;
  std::uint64_t docmap_peak_entries = 0;
  std::uint64_t random_accesses = 0;
  /// Transient-I/O retries charged to this query (fault injection).
  std::uint64_t io_retries = 0;
  /// Faults injected into this query (fault injection).
  std::uint64_t faults_injected = 0;
  /// Filled by the driver: end_time - start_time on the executor clock.
  exec::VirtualTime latency = 0;
  /// Filled by the serving layer: time spent in the admission queue
  /// before dispatch (0 in closed-loop modes). End-to-end latency is
  /// queue_wait + latency.
  exec::VirtualTime queue_wait = 0;
  /// Filled by the serving layer; closed-loop modes leave the default.
  AdmissionOutcome admission_outcome = AdmissionOutcome::kAdmitted;
  /// Filled by the cluster coordinator: shards that contributed to the
  /// merged result / shards the route table asked (0/0 outside cluster
  /// serving, where the single machine is the whole corpus).
  std::uint32_t shards_answered = 0;
  std::uint32_t shards_total = 0;
  /// Fraction of the corpus' documents covered by the shards that
  /// answered, in [0, 1]. 1.0 outside cluster serving so single-node
  /// accounting can read it unconditionally.
  double shard_coverage = 1.0;

  /// Fraction of the query terms' postings consumed before termination,
  /// in [0, 1]; 0 when postings_total is unknown.
  double PostingsFraction() const {
    if (postings_total == 0) return 0.0;
    const double f = static_cast<double>(postings_processed) /
                     static_cast<double>(postings_total);
    return f > 1.0 ? 1.0 : f;
  }
};

struct SearchResult {
  ResultStatus status = ResultStatus::kComplete;
  /// Sorted by decreasing score, ties by increasing doc.
  std::vector<ResultEntry> entries;
  QueryStats stats;

  /// Ran to the algorithm's own stopping condition.
  bool ok() const { return status == ResultStatus::kComplete; }
  /// Ended early but with a usable best-so-far result (anytime path).
  bool degraded() const {
    return status == ResultStatus::kDeadlineDegraded ||
           status == ResultStatus::kPartialAfterFault ||
           status == ResultStatus::kShardsDegraded;
  }
};

/// Sorts entries into canonical order (decreasing score, increasing doc).
void CanonicalizeResult(std::vector<ResultEntry>& entries);

}  // namespace sparta::topk

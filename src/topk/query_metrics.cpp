#include "topk/query_metrics.h"

#include <cinttypes>
#include <cstdio>

#include "util/common.h"

namespace sparta::topk {

bool ConsistentQueryStats(const QueryStats& stats) {
  if (stats.postings_total != 0 &&
      stats.postings_processed > stats.postings_total) {
    return false;
  }
  if (stats.latency < 0 || stats.queue_wait < 0) return false;
  const double fraction = stats.PostingsFraction();
  return fraction >= 0.0 && fraction <= 1.0;
}

void ValidateQueryStats(const QueryStats& stats, const char* where) {
  if (ConsistentQueryStats(stats)) return;
  std::fprintf(stderr,
               "inconsistent QueryStats at %s: postings %" PRIu64 "/%" PRIu64
               " latency %lld queue_wait %lld\n",
               where, stats.postings_processed, stats.postings_total,
               static_cast<long long>(stats.latency),
               static_cast<long long>(stats.queue_wait));
  SPARTA_CHECK_MSG(false, "QueryStats invariant violated");
}

void AccumulateQueryStats(const QueryStats& stats,
                          obs::MetricsRegistry& registry) {
  registry.GetCounter("query.count").Add();
  registry.GetCounter("query.postings_processed")
      .Add(stats.postings_processed);
  registry.GetCounter("query.postings_total").Add(stats.postings_total);
  registry.GetCounter("query.heap_inserts").Add(stats.heap_inserts);
  registry.GetCounter("query.random_accesses").Add(stats.random_accesses);
  registry.GetCounter("query.io_retries").Add(stats.io_retries);
  registry.GetCounter("query.faults_injected").Add(stats.faults_injected);
  registry.GetHistogram("query.latency_ns").Add(stats.latency);
  registry.GetHistogram("query.queue_wait_ns").Add(stats.queue_wait);
  if (stats.postings_total != 0) {
    // Per-mille so the integer histogram keeps useful resolution.
    registry.GetHistogram("query.postings_fraction_pm")
        .Add(static_cast<std::int64_t>(stats.PostingsFraction() * 1000.0));
  }
  registry
      .GetCounter(std::string("query.admission.") +
                  AdmissionOutcomeName(stats.admission_outcome))
      .Add();
}

}  // namespace sparta::topk

// Recall: the quality metric of approximate top-k retrieval (§2).
#pragma once

#include <span>

#include "topk/oracle.h"
#include "topk/result.h"

namespace sparta::topk {

/// Fraction of the exact top-k covered by `approx` (§2), tie-aware:
/// a returned document whose exact score equals the k-th score counts
/// even if the oracle's tie-breaking placed it just outside the list.
double Recall(const ExactTopK& exact, std::span<const ResultEntry> approx);

}  // namespace sparta::topk

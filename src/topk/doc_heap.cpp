#include "topk/doc_heap.h"

#include <algorithm>

namespace sparta::topk {
namespace {

bool HeapCmp(const HeapEntry& a, const HeapEntry& b) {
  // std::push_heap builds a max-heap; invert to keep the *worst* entry at
  // the root.
  return WorseThan(b, a);
}

}  // namespace

TopKHeap::TopKHeap(int k) : k_(k) {
  SPARTA_CHECK(k > 0);
  heap_.reserve(static_cast<std::size_t>(k));
}

void TopKHeap::UpdateThreshold() {
  threshold_.store(full() ? heap_.front().score : 0,
                   std::memory_order_relaxed);
}

bool TopKHeap::Insert(HeapEntry e) {
  if (!full()) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), HeapCmp);
    UpdateThreshold();
    return true;
  }
  if (!WorseThan(heap_.front(), e)) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapCmp);
  heap_.back() = e;
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp);
  UpdateThreshold();
  return true;
}

bool TopKHeap::Contains(DocId doc) const {
  return std::any_of(heap_.begin(), heap_.end(),
                     [doc](const HeapEntry& e) { return e.doc == doc; });
}

void TopKHeap::Merge(const TopKHeap& other) {
  for (const HeapEntry& e : other.heap_) Insert(e);
}

std::vector<ResultEntry> TopKHeap::Extract() const {
  std::vector<ResultEntry> out;
  out.reserve(heap_.size());
  for (const HeapEntry& e : heap_) out.push_back({e.doc, e.score});
  CanonicalizeResult(out);
  return out;
}

}  // namespace sparta::topk

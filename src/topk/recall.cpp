#include "topk/recall.h"

#include <algorithm>
#include <unordered_set>

namespace sparta::topk {

void CanonicalizeResult(std::vector<ResultEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ResultEntry& a, const ResultEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
}

double Recall(const ExactTopK& exact, std::span<const ResultEntry> approx) {
  if (exact.topk.empty()) return 1.0;
  std::unordered_set<DocId> good;
  good.reserve(exact.topk.size() + exact.boundary.size());
  for (const auto& e : exact.topk) good.insert(e.doc);
  for (const DocId d : exact.boundary) good.insert(d);

  std::size_t hits = 0;
  std::unordered_set<DocId> seen;  // guard against duplicate entries
  for (const auto& e : approx) {
    if (seen.insert(e.doc).second && good.contains(e.doc)) ++hits;
  }
  hits = std::min(hits, exact.topk.size());
  return static_cast<double>(hits) /
         static_cast<double>(exact.topk.size());
}

}  // namespace sparta::topk

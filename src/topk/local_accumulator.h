// Private per-worker score accumulators (DESIGN.md §14).
//
// Corey-style "don't share by default": during a posting segment a
// worker buffers its term-score contributions in an unsynchronized
// private map instead of taking a docMap stripe lock per posting. At
// the phase boundary (segment end) the buffer is merged into the shared
// ConcurrentDocMap in stripe-homogeneous batches — one stripe-lock
// acquisition per touched stripe instead of one per posting, which is
// where the contention win comes from.
//
// Determinism contract: the merge visits stripes in stripe-index order
// and doc groups in first-arrival order, and every per-doc fold runs
// through FoldInWorkerOrder — a canonical (worker, term) summation
// order — so results are bit-equal to the unbuffered per-posting path
// regardless of posting arrival order (tests/test_equivalence.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "exec/context.h"
#include "topk/doc_map.h"
#include "util/common.h"

namespace sparta::topk {

/// One tagged score contribution for order-canonical folding.
template <typename V>
struct Contribution {
  int worker = 0;
  std::int32_t term = 0;
  V value{};
};

/// Folds contributions in (worker, term) order — a canonical order that
/// depends only on *who produced what*, never on arrival interleaving.
/// Integer scores are order-insensitive anyway; for floating-point
/// values this is what makes phase-boundary merges bit-equal to the
/// oracle under any buffering or scheduling (the fp-order regression in
/// tests/test_equivalence.cpp fails without it). Sorts in place.
template <typename V>
V FoldInWorkerOrder(std::span<Contribution<V>> contributions) {
  std::stable_sort(contributions.begin(), contributions.end(),
                   [](const Contribution<V>& a, const Contribution<V>& b) {
                     return a.worker != b.worker ? a.worker < b.worker
                                                 : a.term < b.term;
                   });
  V sum{};
  for (const auto& c : contributions) sum += c.value;
  return sum;
}

/// What Add does when the same (doc, term) key recurs within a phase.
enum class AccumulatorMode : std::uint8_t {
  /// Keep the latest value (Sparta score slots / pRA presence sets —
  /// the per-posting path overwrites the same slot, so must we).
  kStore,
  /// Sum deltas (JASS-family additive accumulators).
  kAccumulate,
};

/// The per-worker private buffer. Never shared: each worker owns one
/// instance, indexed by its worker id (sparta_lint rule f enforces the
/// indexing discipline). Modeled memory is charged per buffered entry
/// so deferral cannot hide footprint from the OOM budget.
class LocalAccumulator {
 public:
  LocalAccumulator(AccumulatorMode mode, int num_terms);

  /// Buffers one contribution. Returns false when the memory budget is
  /// exceeded — the caller must wind down with an honest kOom partial
  /// (buffered entries stay mergeable).
  [[nodiscard]] bool Add(DocId doc, std::int32_t term, Score score,
                         exec::WorkerContext& worker);

  bool Empty() const { return entries_.empty(); }
  std::size_t Size() const { return entries_.size(); }
  std::size_t ApproxBytes() const;

  struct MergeStats {
    std::size_t batches = 0;  ///< stripe-lock acquisitions
    std::size_t applied = 0;  ///< doc groups resolved to an entry
    std::size_t refused = 0;  ///< doc groups dropped at the cutoff
    bool oom = false;
  };

  /// Per-doc-group merge callback, invoked under the stripe lock: the
  /// group's contributions, the map entry (found or created), whether
  /// this merge inserted it, and the group's FoldInWorkerOrder total.
  using MergeSink = std::function<void(std::span<const PendingScore>,
                                       DocType*, bool inserted,
                                       Score folded)>;

  /// Phase-boundary merge into the shared map: buckets entries by
  /// stripe, walks stripes in index order (doc groups in first-arrival
  /// order within each), and applies each bucket with one
  /// ConcurrentDocMap::ApplyBatch call. Always clears the buffer and
  /// releases its modeled memory, even on a mid-merge OOM (the partial
  /// is reported through MergeStats::oom).
  MergeStats MergeInto(ConcurrentDocMap& map, exec::WorkerContext& worker,
                       const MergeSink& sink);

  /// Drops all buffered entries and releases their modeled memory
  /// (abandon path: deadline/fault wind-down before a merge).
  void Clear(exec::WorkerContext& worker);

 private:
  static std::uint64_t KeyOf(DocId doc, std::int32_t term) {
    return (static_cast<std::uint64_t>(doc) << 16) |
           (static_cast<std::uint64_t>(term) & 0xFFFF);
  }

  AccumulatorMode mode_;
  std::int64_t entry_bytes_;
  /// Arrival-ordered entries — merge order derives from this vector,
  /// never from unordered_map iteration.
  std::vector<PendingScore> entries_;
  /// (doc, term) -> index into entries_, for recurrence coalescing.
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace sparta::topk

#include "topk/doc_map.h"

#include "obs/trace.h"
#include "util/rng.h"

namespace sparta::topk {

Score SumUpperBounds(const UpperBounds& ub) {
  Score sum = 0;
  for (const auto& entry : ub) sum += entry.load(std::memory_order_relaxed);
  return sum;
}

DocType::DocType(DocId id, int num_terms)
    : score(static_cast<std::size_t>(num_terms)), id_(id) {}

Score DocType::SumScores() const {
  Score sum = 0;
  for (const auto& s : score) sum += s.load(std::memory_order_relaxed);
  return sum;
}

Score DocType::UpperBound(const UpperBounds& ub) const {
  SPARTA_CHECK(ub.size() == score.size());
  Score sum = 0;
  for (std::size_t i = 0; i < score.size(); ++i) {
    const Score s = score[i].load(std::memory_order_relaxed);
    sum += s > 0 ? s : ub[i].load(std::memory_order_relaxed);
  }
  return sum;
}

std::int64_t ModeledEntryBytes(int num_terms, bool concurrent) {
  // Modeled after the paper's Java implementation: a HashMap.Node (or
  // ConcurrentHashMap.Node plus its synchronization overhead), an
  // Integer-boxed key, a DocType object header with an int[] score array
  // and an int LB. See DESIGN.md §1 (memory-budget substitution).
  const std::int64_t node = concurrent ? 88 : 60;
  return node + 4 * static_cast<std::int64_t>(num_terms);
}

std::size_t ConcurrentDocMap::StripeOf(DocId doc) {
  return static_cast<std::size_t>(util::Mix64(doc)) %
         static_cast<std::size_t>(kStripes);
}

ConcurrentDocMap::ConcurrentDocMap(exec::QueryContext& ctx, int num_terms,
                                   std::int64_t modeled_entry_bytes)
    : num_terms_(num_terms),
      entry_bytes_(modeled_entry_bytes != 0
                       ? modeled_entry_bytes
                       : ModeledEntryBytes(num_terms, /*concurrent=*/true)),
      stripes_(kStripes) {
  const int domains = ctx.numa_domains();
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    Stripe& stripe = stripes_[s];
    stripe.lock = ctx.MakeLock();
    // Round-robin stripe placement across sockets by stripe *index* —
    // an allocator-independent key, so the placement (and every trace
    // downstream of it) is identical run to run. One domain degenerates
    // to the pre-NUMA layout: everything homed on domain 0.
    stripe.home_domain = domains <= 1 ? 0 : static_cast<int>(
        s % static_cast<std::size_t>(domains));
    // All stripes aggregate under one name; waits on the granular locks
    // are the docMap's serialization cost (§4.3).
    ctx.RegisterContentionRange(stripe.lock.get(), 1, "docMap.stripe");
  }
}

std::size_t ConcurrentDocMap::ApproxBytes() const {
  // DocType payload + hash node per entry, approximated for the cost
  // model (what matters is the cache level it lands in, not exact bytes).
  return Size() * (sizeof(DocType) + 32 +
                   4 * static_cast<std::size_t>(num_terms_));
}

ConcurrentDocMap::GetOrCreateResult ConcurrentDocMap::GetOrCreate(
    DocId doc, exec::WorkerContext& worker) {
  Stripe& stripe = stripes_[StripeOf(doc)];
  GetOrCreateResult result;
  // Machine-gated span (the map sees only the WorkerContext, no
  // SearchParams); payload b is the operation: 0 = lookup hit,
  // 1 = insert, 2 = Find, 3 = Freeze drain. Begins before the stripe
  // guard so lock.wait spans nest inside.
  obs::SpanScope span(worker, obs::SpanKind::kDocMapAccess);
  span.set_args(doc, 0);
  const exec::CtxLockGuard guard(*stripe.lock, worker);
  worker.StructureAccessHomed(ApproxBytes(), /*write_shared=*/true,
                              stripe.home_domain);
  worker.ShadowAccess(&stripe.map, exec::AccessKind::kRead);
  const auto it = stripe.map.find(doc);
  if (it != stripe.map.end()) {
    result.doc = it->second;
    return result;
  }
  // A caller that observed UBStop slightly late may still reach here
  // after the cutoff; the check under the stripe lock makes the freeze
  // race-free (Freeze() drains this lock before publishing frozen_).
  if (insert_cutoff()) return result;
  if (!worker.ChargeMemory(entry_bytes_)) {
    (void)worker.ChargeMemory(-entry_bytes_);  // nothing was stored
    result.oom = true;
    return result;
  }
  worker.StructureAccessHomed(ApproxBytes(), /*write_shared=*/true,
                              stripe.home_domain, /*insert=*/true);
  worker.ShadowAccess(&stripe.map, exec::AccessKind::kWrite);
  DocType* created = &stripe.arena.emplace_back(doc, num_terms_);
  stripe.map.emplace(doc, created);
  const auto new_size =
      size_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto peak = peak_.load(std::memory_order_relaxed);
  while (new_size > peak &&
         !peak_.compare_exchange_weak(peak, new_size,
                                      std::memory_order_relaxed)) {
  }
  result.doc = created;
  result.inserted = true;
  span.set_args(doc, 1);
  return result;
}

DocType* ConcurrentDocMap::Find(DocId doc, exec::WorkerContext& worker) {
  // The stripe lock is held even in the read-only phase: the freeze is
  // not a synchronization point, so lock-free reads would race with the
  // last in-flight inserts (this is also the honest cost — the paper's
  // workers keep using the locked concurrent map until their termMap
  // replicas take over).
  Stripe& stripe = stripes_[StripeOf(doc)];
  obs::SpanScope span(worker, obs::SpanKind::kDocMapAccess);
  span.set_args(doc, 2);
  const exec::CtxLockGuard guard(*stripe.lock, worker);
  worker.StructureAccessHomed(ApproxBytes(), /*write_shared=*/!read_only(),
                              stripe.home_domain);
  worker.ShadowAccess(&stripe.map, exec::AccessKind::kRead);
  const auto it = stripe.map.find(doc);
  return it == stripe.map.end() ? nullptr : it->second;
}

ConcurrentDocMap::BatchResult ConcurrentDocMap::ApplyBatch(
    std::span<const PendingScore> batch, exec::WorkerContext& worker,
    const ApplySink& sink) {
  BatchResult result;
  if (batch.empty()) return result;
  const std::size_t stripe_index = StripeOf(batch.front().doc);
  Stripe& stripe = stripes_[stripe_index];
  // Payload b = 4: batched phase-boundary merge (one span per stripe
  // batch, not per posting — the trace mirrors the cost structure).
  obs::SpanScope span(worker, obs::SpanKind::kDocMapAccess);
  span.set_args(batch.front().doc, 4);
  const exec::CtxLockGuard guard(*stripe.lock, worker);
  std::size_t i = 0;
  while (i < batch.size()) {
    const DocId doc = batch[i].doc;
    SPARTA_CHECK(StripeOf(doc) == stripe_index);
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].doc == doc) ++j;
    const std::span<const PendingScore> group = batch.subspan(i, j - i);
    i = j;
    worker.StructureAccessHomed(ApproxBytes(), /*write_shared=*/true,
                                stripe.home_domain);
    worker.ShadowAccess(&stripe.map, exec::AccessKind::kRead);
    const auto it = stripe.map.find(doc);
    DocType* entry = it != stripe.map.end() ? it->second : nullptr;
    bool inserted = false;
    if (entry == nullptr) {
      // Same protocol as GetOrCreate: refusing an unseen doc after the
      // cutoff is exact (its buffered scores are ≤ the still-published
      // UB[i], so Σ UB ≤ Θ already rules it out of the top-k), and OOM
      // stops the batch honestly mid-way.
      if (insert_cutoff()) {
        ++result.refused;
        continue;
      }
      if (!worker.ChargeMemory(entry_bytes_)) {
        (void)worker.ChargeMemory(-entry_bytes_);  // nothing was stored
        result.oom = true;
        break;
      }
      worker.StructureAccessHomed(ApproxBytes(), /*write_shared=*/true,
                                  stripe.home_domain, /*insert=*/true);
      worker.ShadowAccess(&stripe.map, exec::AccessKind::kWrite);
      entry = &stripe.arena.emplace_back(doc, num_terms_);
      stripe.map.emplace(doc, entry);
      inserted = true;
      const auto new_size =
          size_.fetch_add(1, std::memory_order_relaxed) + 1;
      auto peak = peak_.load(std::memory_order_relaxed);
      while (new_size > peak &&
             !peak_.compare_exchange_weak(peak, new_size,
                                          std::memory_order_relaxed)) {
      }
    }
    sink(group, entry, inserted);
    ++result.applied;
  }
  return result;
}

void ConcurrentDocMap::Freeze(exec::WorkerContext& worker) {
  obs::SpanScope span(worker, obs::SpanKind::kDocMapAccess);
  span.set_args(0, 3);
  insert_cutoff_.store(true, std::memory_order_release);
  // Drain: any insert that passed the cutoff check is still inside its
  // stripe's critical section; acquiring each lock once waits it out.
  // Inserts acquiring after our unlock see the cutoff and back off.
  for (auto& stripe : stripes_) {
    const exec::CtxLockGuard guard(*stripe.lock, worker);
  }
  frozen_.store(true, std::memory_order_release);
}

ConcurrentDocMap::GetOrCreateResult ConcurrentDocMap::AddScore(
    DocId doc, Score delta, exec::WorkerContext& worker) {
  GetOrCreateResult result = GetOrCreate(doc, worker);
  if (result.doc != nullptr) {
    result.doc->lb.fetch_add(delta, std::memory_order_relaxed);
  }
  return result;
}

bool LocalDocMap::Add(DocType* doc, exec::WorkerContext& worker) {
  SPARTA_CHECK(doc != nullptr);
  if (!worker.ChargeMemory(entry_bytes_)) {
    // The entry is not stored, so its charge must not linger.
    (void)worker.ChargeMemory(-entry_bytes_);
    return false;
  }
  worker.StructureAccess(ApproxBytes(), /*write_shared=*/false,
                         /*insert=*/true);
  map_.emplace(doc->id(), doc);
  return true;
}

DocType* LocalDocMap::Find(DocId doc, exec::WorkerContext& worker) const {
  worker.StructureAccess(ApproxBytes(), /*write_shared=*/false);
  const auto it = map_.find(doc);
  return it == map_.end() ? nullptr : it->second;
}

std::size_t LocalDocMap::ApproxBytes() const {
  // Hash node plus the referenced DocType payload the reader touches.
  return map_.size() * (24 + sizeof(DocType) + 48);
}

void LocalDocMap::ReleaseModeledMemory(exec::WorkerContext& worker) {
  if (memory_released_) return;
  memory_released_ = true;
  // Releasing cannot newly exceed the budget; ignore the flag.
  (void)worker.ChargeMemory(-entry_bytes_ *
                            static_cast<std::int64_t>(map_.size()));
}

}  // namespace sparta::topk

#include "topk/local_accumulator.h"

namespace sparta::topk {

LocalAccumulator::LocalAccumulator(AccumulatorMode mode, int num_terms)
    : mode_(mode),
      entry_bytes_(ModeledEntryBytes(num_terms, /*concurrent=*/false)) {}

bool LocalAccumulator::Add(DocId doc, std::int32_t term, Score score,
                           exec::WorkerContext& worker) {
  // Private structure: cacheable, no stripe lock, no coherence traffic —
  // exactly the cost asymmetry the accumulators exist to exploit.
  worker.StructureAccess(ApproxBytes(), /*write_shared=*/false);
  const std::uint64_t key = KeyOf(doc, term);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    PendingScore& entry = entries_[it->second];
    if (mode_ == AccumulatorMode::kAccumulate) {
      entry.score += score;
    } else {
      entry.score = score;
    }
    return true;
  }
  if (!worker.ChargeMemory(entry_bytes_)) {
    (void)worker.ChargeMemory(-entry_bytes_);  // nothing was stored
    return false;
  }
  worker.StructureAccess(ApproxBytes(), /*write_shared=*/false,
                         /*insert=*/true);
  index_.emplace(key, entries_.size());
  entries_.push_back(PendingScore{doc, term, score});
  return true;
}

std::size_t LocalAccumulator::ApproxBytes() const {
  // Entry payload plus hash-index node, for the cache-level cost model.
  return entries_.size() * (sizeof(PendingScore) + 40);
}

LocalAccumulator::MergeStats LocalAccumulator::MergeInto(
    ConcurrentDocMap& map, exec::WorkerContext& worker,
    const MergeSink& sink) {
  MergeStats stats;
  if (entries_.empty()) return stats;

  // Bucket by stripe in arrival order, then make doc groups contiguous
  // within each bucket by stable-sorting on the doc's first-arrival
  // rank. Both keys (stripe index, arrival rank) are deterministic
  // functions of this worker's posting stream — no pointer or
  // unordered-iteration order leaks into the merge.
  std::vector<std::vector<PendingScore>> buckets(
      static_cast<std::size_t>(ConcurrentDocMap::kStripes));
  std::unordered_map<DocId, std::size_t> first_seen;
  first_seen.reserve(entries_.size());
  for (const PendingScore& entry : entries_) {
    first_seen.emplace(entry.doc, first_seen.size());
    buckets[ConcurrentDocMap::StripeOf(entry.doc)].push_back(entry);
  }
  for (auto& bucket : buckets) {
    std::stable_sort(bucket.begin(), bucket.end(),
                     [&](const PendingScore& a, const PendingScore& b) {
                       return first_seen.at(a.doc) < first_seen.at(b.doc);
                     });
  }

  const int self = worker.worker_id();
  std::vector<Contribution<Score>> fold;
  const auto wrapped = [&](std::span<const PendingScore> group,
                           DocType* entry, bool inserted) {
    fold.clear();
    for (const PendingScore& p : group) {
      fold.push_back(Contribution<Score>{self, p.term, p.score});
    }
    const Score folded = FoldInWorkerOrder<Score>(fold);
    sink(group, entry, inserted, folded);
  };

  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const auto result = map.ApplyBatch(bucket, worker, wrapped);
    ++stats.batches;
    stats.applied += result.applied;
    stats.refused += result.refused;
    if (result.oom) {
      stats.oom = true;
      break;  // budget gone: stop merging, report the honest partial
    }
  }
  Clear(worker);
  return stats;
}

void LocalAccumulator::Clear(exec::WorkerContext& worker) {
  if (!entries_.empty()) {
    // Releasing cannot newly exceed the budget; ignore the flag.
    (void)worker.ChargeMemory(
        -entry_bytes_ * static_cast<std::int64_t>(entries_.size()));
  }
  entries_.clear();
  index_.clear();
}

}  // namespace sparta::topk

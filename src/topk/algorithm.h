// The top-k retrieval algorithm interface.
//
// Algorithms are asynchronous: Prepare() binds a query to an execution
// context, Start() submits the initial jobs, and TakeResult() harvests
// the result once the context has drained. The blocking Run() convenience
// wraps the three for latency-mode callers; the throughput driver uses
// the asynchronous form to keep many queries in flight on one simulated
// machine.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "exec/context.h"
#include "index/inverted_index.h"
#include "topk/params.h"
#include "topk/result.h"

namespace sparta::topk {

/// One in-flight query; owns all per-query algorithm state.
class QueryRun {
 public:
  virtual ~QueryRun() = default;

  /// Submits the query's initial jobs into its execution context.
  virtual void Start() = 0;

  /// Extracts the final result. Valid once the context has drained.
  virtual SearchResult TakeResult() = 0;
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string_view name() const = 0;

  virtual std::unique_ptr<QueryRun> Prepare(const index::InvertedIndex& idx,
                                            std::vector<TermId> terms,
                                            const SearchParams& params,
                                            exec::QueryContext& ctx) const = 0;

  /// Blocking convenience: Prepare + Start + RunToCompletion +
  /// TakeResult, with latency filled in from the context clock.
  SearchResult Run(const index::InvertedIndex& idx,
                   std::vector<TermId> terms, const SearchParams& params,
                   exec::QueryContext& ctx) const;
};

}  // namespace sparta::topk

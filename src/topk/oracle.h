// Brute-force exact top-k oracle.
//
// Computes ground truth by fully scoring every document that matches any
// query term. Used for correctness tests (safe algorithms must match it)
// and as the reference set for recall measurements (§2).
#pragma once

#include <span>
#include <vector>

#include "index/inverted_index.h"
#include "topk/result.h"

namespace sparta::topk {

struct ExactTopK {
  /// The exact top-k, canonical order (score desc, doc asc).
  std::vector<ResultEntry> topk;
  /// Score of the k-th result (0 if fewer than k matches exist).
  Score kth_score = 0;
  /// Documents *outside* topk whose score ties kth_score. For recall
  /// purposes they are interchangeable with same-scored topk members.
  std::vector<DocId> boundary;
};

ExactTopK ComputeExactTopK(const index::InvertedIndex& idx,
                           std::span<const TermId> terms, int k);

}  // namespace sparta::topk

#include "topk/algorithm.h"

namespace sparta::topk {

SearchResult Algorithm::Run(const index::InvertedIndex& idx,
                            std::vector<TermId> terms,
                            const SearchParams& params,
                            exec::QueryContext& ctx) const {
  auto run = Prepare(idx, std::move(terms), params, ctx);
  if (params.deadline != exec::kNever) {
    ctx.set_deadline(ctx.start_time() + params.deadline);
  }
  run->Start();
  ctx.RunToCompletion();
  SearchResult result = run->TakeResult();
  result.stats.latency = ctx.end_time() - ctx.start_time();
  const exec::FaultStats faults = ctx.fault_stats();
  result.stats.io_retries = faults.io_retries;
  result.stats.faults_injected = faults.injected;
  return result;
}

}  // namespace sparta::topk

#include "topk/algorithm.h"

namespace sparta::topk {

SearchResult Algorithm::Run(const index::InvertedIndex& idx,
                            std::vector<TermId> terms,
                            const SearchParams& params,
                            exec::QueryContext& ctx) const {
  auto run = Prepare(idx, std::move(terms), params, ctx);
  run->Start();
  ctx.RunToCompletion();
  SearchResult result = run->TakeResult();
  result.stats.latency = ctx.end_time() - ctx.start_time();
  return result;
}

}  // namespace sparta::topk

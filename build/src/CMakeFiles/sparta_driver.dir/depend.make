# Empty dependencies file for sparta_driver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsparta_driver.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sparta_driver.dir/driver/bench_driver.cpp.o"
  "CMakeFiles/sparta_driver.dir/driver/bench_driver.cpp.o.d"
  "CMakeFiles/sparta_driver.dir/driver/experiment.cpp.o"
  "CMakeFiles/sparta_driver.dir/driver/experiment.cpp.o.d"
  "CMakeFiles/sparta_driver.dir/driver/table.cpp.o"
  "CMakeFiles/sparta_driver.dir/driver/table.cpp.o.d"
  "libsparta_driver.a"
  "libsparta_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sparta_util.
# This may be replaced when dependencies are built.

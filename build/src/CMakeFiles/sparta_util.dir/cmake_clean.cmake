file(REMOVE_RECURSE
  "CMakeFiles/sparta_util.dir/util/histogram.cpp.o"
  "CMakeFiles/sparta_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/sparta_util.dir/util/rng.cpp.o"
  "CMakeFiles/sparta_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/sparta_util.dir/util/zipf.cpp.o"
  "CMakeFiles/sparta_util.dir/util/zipf.cpp.o.d"
  "libsparta_util.a"
  "libsparta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsparta_util.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bmw.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/bmw.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/bmw.cpp.o.d"
  "/root/repo/src/baselines/jass.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/jass.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/jass.cpp.o.d"
  "/root/repo/src/baselines/maxscore.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/maxscore.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/maxscore.cpp.o.d"
  "/root/repo/src/baselines/pbmw.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/pbmw.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/pbmw.cpp.o.d"
  "/root/repo/src/baselines/registry.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/registry.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/registry.cpp.o.d"
  "/root/repo/src/baselines/snra.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/snra.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/snra.cpp.o.d"
  "/root/repo/src/baselines/ta_nra.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/ta_nra.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/ta_nra.cpp.o.d"
  "/root/repo/src/baselines/ta_ra.cpp" "src/CMakeFiles/sparta_baselines.dir/baselines/ta_ra.cpp.o" "gcc" "src/CMakeFiles/sparta_baselines.dir/baselines/ta_ra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sparta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

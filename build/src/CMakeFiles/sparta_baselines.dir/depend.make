# Empty dependencies file for sparta_baselines.
# This may be replaced when dependencies are built.

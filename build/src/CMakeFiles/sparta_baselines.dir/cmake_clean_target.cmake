file(REMOVE_RECURSE
  "libsparta_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sparta_baselines.dir/baselines/bmw.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/bmw.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/jass.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/jass.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/maxscore.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/maxscore.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/pbmw.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/pbmw.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/registry.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/registry.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/snra.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/snra.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/ta_nra.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/ta_nra.cpp.o.d"
  "CMakeFiles/sparta_baselines.dir/baselines/ta_ra.cpp.o"
  "CMakeFiles/sparta_baselines.dir/baselines/ta_ra.cpp.o.d"
  "libsparta_baselines.a"
  "libsparta_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

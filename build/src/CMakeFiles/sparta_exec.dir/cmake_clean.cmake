file(REMOVE_RECURSE
  "CMakeFiles/sparta_exec.dir/exec/job_queue.cpp.o"
  "CMakeFiles/sparta_exec.dir/exec/job_queue.cpp.o.d"
  "CMakeFiles/sparta_exec.dir/exec/thread_pool.cpp.o"
  "CMakeFiles/sparta_exec.dir/exec/thread_pool.cpp.o.d"
  "CMakeFiles/sparta_exec.dir/exec/threaded_executor.cpp.o"
  "CMakeFiles/sparta_exec.dir/exec/threaded_executor.cpp.o.d"
  "libsparta_exec.a"
  "libsparta_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

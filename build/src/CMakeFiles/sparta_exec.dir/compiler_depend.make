# Empty compiler generated dependencies file for sparta_exec.
# This may be replaced when dependencies are built.

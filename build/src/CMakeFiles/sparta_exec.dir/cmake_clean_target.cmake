file(REMOVE_RECURSE
  "libsparta_exec.a"
)

# Empty dependencies file for sparta_sim.
# This may be replaced when dependencies are built.

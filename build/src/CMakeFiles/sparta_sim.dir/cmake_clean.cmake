file(REMOVE_RECURSE
  "CMakeFiles/sparta_sim.dir/sim/coherence.cpp.o"
  "CMakeFiles/sparta_sim.dir/sim/coherence.cpp.o.d"
  "CMakeFiles/sparta_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/sparta_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/sparta_sim.dir/sim/page_cache.cpp.o"
  "CMakeFiles/sparta_sim.dir/sim/page_cache.cpp.o.d"
  "CMakeFiles/sparta_sim.dir/sim/sim_executor.cpp.o"
  "CMakeFiles/sparta_sim.dir/sim/sim_executor.cpp.o.d"
  "libsparta_sim.a"
  "libsparta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

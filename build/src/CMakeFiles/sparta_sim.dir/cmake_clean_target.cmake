file(REMOVE_RECURSE
  "libsparta_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/coherence.cpp" "src/CMakeFiles/sparta_sim.dir/sim/coherence.cpp.o" "gcc" "src/CMakeFiles/sparta_sim.dir/sim/coherence.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/sparta_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/sparta_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/page_cache.cpp" "src/CMakeFiles/sparta_sim.dir/sim/page_cache.cpp.o" "gcc" "src/CMakeFiles/sparta_sim.dir/sim/page_cache.cpp.o.d"
  "/root/repo/src/sim/sim_executor.cpp" "src/CMakeFiles/sparta_sim.dir/sim/sim_executor.cpp.o" "gcc" "src/CMakeFiles/sparta_sim.dir/sim/sim_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sparta_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for sparta_text.
# This may be replaced when dependencies are built.

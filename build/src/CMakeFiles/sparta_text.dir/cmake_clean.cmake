file(REMOVE_RECURSE
  "CMakeFiles/sparta_text.dir/text/tokenizer.cpp.o"
  "CMakeFiles/sparta_text.dir/text/tokenizer.cpp.o.d"
  "CMakeFiles/sparta_text.dir/text/vocabulary.cpp.o"
  "CMakeFiles/sparta_text.dir/text/vocabulary.cpp.o.d"
  "libsparta_text.a"
  "libsparta_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

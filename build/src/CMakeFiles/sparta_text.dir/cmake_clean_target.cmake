file(REMOVE_RECURSE
  "libsparta_text.a"
)

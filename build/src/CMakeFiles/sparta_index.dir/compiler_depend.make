# Empty compiler generated dependencies file for sparta_index.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsparta_index.a"
)

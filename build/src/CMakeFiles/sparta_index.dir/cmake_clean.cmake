file(REMOVE_RECURSE
  "CMakeFiles/sparta_index.dir/index/block_max.cpp.o"
  "CMakeFiles/sparta_index.dir/index/block_max.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/builder.cpp.o"
  "CMakeFiles/sparta_index.dir/index/builder.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/compression.cpp.o"
  "CMakeFiles/sparta_index.dir/index/compression.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/disk_format.cpp.o"
  "CMakeFiles/sparta_index.dir/index/disk_format.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/inverted_index.cpp.o"
  "CMakeFiles/sparta_index.dir/index/inverted_index.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/mmap_file.cpp.o"
  "CMakeFiles/sparta_index.dir/index/mmap_file.cpp.o.d"
  "CMakeFiles/sparta_index.dir/index/scorer.cpp.o"
  "CMakeFiles/sparta_index.dir/index/scorer.cpp.o.d"
  "libsparta_index.a"
  "libsparta_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

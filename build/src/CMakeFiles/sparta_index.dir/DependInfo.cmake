
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/block_max.cpp" "src/CMakeFiles/sparta_index.dir/index/block_max.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/block_max.cpp.o.d"
  "/root/repo/src/index/builder.cpp" "src/CMakeFiles/sparta_index.dir/index/builder.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/builder.cpp.o.d"
  "/root/repo/src/index/compression.cpp" "src/CMakeFiles/sparta_index.dir/index/compression.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/compression.cpp.o.d"
  "/root/repo/src/index/disk_format.cpp" "src/CMakeFiles/sparta_index.dir/index/disk_format.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/disk_format.cpp.o.d"
  "/root/repo/src/index/inverted_index.cpp" "src/CMakeFiles/sparta_index.dir/index/inverted_index.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/inverted_index.cpp.o.d"
  "/root/repo/src/index/mmap_file.cpp" "src/CMakeFiles/sparta_index.dir/index/mmap_file.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/mmap_file.cpp.o.d"
  "/root/repo/src/index/scorer.cpp" "src/CMakeFiles/sparta_index.dir/index/scorer.cpp.o" "gcc" "src/CMakeFiles/sparta_index.dir/index/scorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sparta_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

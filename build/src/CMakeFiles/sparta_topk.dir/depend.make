# Empty dependencies file for sparta_topk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsparta_topk.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sparta_topk.dir/topk/algorithm.cpp.o"
  "CMakeFiles/sparta_topk.dir/topk/algorithm.cpp.o.d"
  "CMakeFiles/sparta_topk.dir/topk/doc_heap.cpp.o"
  "CMakeFiles/sparta_topk.dir/topk/doc_heap.cpp.o.d"
  "CMakeFiles/sparta_topk.dir/topk/doc_map.cpp.o"
  "CMakeFiles/sparta_topk.dir/topk/doc_map.cpp.o.d"
  "CMakeFiles/sparta_topk.dir/topk/oracle.cpp.o"
  "CMakeFiles/sparta_topk.dir/topk/oracle.cpp.o.d"
  "CMakeFiles/sparta_topk.dir/topk/recall.cpp.o"
  "CMakeFiles/sparta_topk.dir/topk/recall.cpp.o.d"
  "libsparta_topk.a"
  "libsparta_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

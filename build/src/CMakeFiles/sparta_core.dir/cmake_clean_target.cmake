file(REMOVE_RECURSE
  "libsparta_core.a"
)

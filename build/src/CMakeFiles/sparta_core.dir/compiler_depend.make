# Empty compiler generated dependencies file for sparta_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sparta_core.dir/core/sparta.cpp.o"
  "CMakeFiles/sparta_core.dir/core/sparta.cpp.o.d"
  "libsparta_core.a"
  "libsparta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sparta_corpus.
# This may be replaced when dependencies are built.

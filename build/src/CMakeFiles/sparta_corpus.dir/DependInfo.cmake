
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/datasets.cpp" "src/CMakeFiles/sparta_corpus.dir/corpus/datasets.cpp.o" "gcc" "src/CMakeFiles/sparta_corpus.dir/corpus/datasets.cpp.o.d"
  "/root/repo/src/corpus/query_log.cpp" "src/CMakeFiles/sparta_corpus.dir/corpus/query_log.cpp.o" "gcc" "src/CMakeFiles/sparta_corpus.dir/corpus/query_log.cpp.o.d"
  "/root/repo/src/corpus/scale_up.cpp" "src/CMakeFiles/sparta_corpus.dir/corpus/scale_up.cpp.o" "gcc" "src/CMakeFiles/sparta_corpus.dir/corpus/scale_up.cpp.o.d"
  "/root/repo/src/corpus/synthetic.cpp" "src/CMakeFiles/sparta_corpus.dir/corpus/synthetic.cpp.o" "gcc" "src/CMakeFiles/sparta_corpus.dir/corpus/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sparta_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsparta_corpus.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sparta_corpus.dir/corpus/datasets.cpp.o"
  "CMakeFiles/sparta_corpus.dir/corpus/datasets.cpp.o.d"
  "CMakeFiles/sparta_corpus.dir/corpus/query_log.cpp.o"
  "CMakeFiles/sparta_corpus.dir/corpus/query_log.cpp.o.d"
  "CMakeFiles/sparta_corpus.dir/corpus/scale_up.cpp.o"
  "CMakeFiles/sparta_corpus.dir/corpus/scale_up.cpp.o.d"
  "CMakeFiles/sparta_corpus.dir/corpus/synthetic.cpp.o"
  "CMakeFiles/sparta_corpus.dir/corpus/synthetic.cpp.o.d"
  "libsparta_corpus.a"
  "libsparta_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

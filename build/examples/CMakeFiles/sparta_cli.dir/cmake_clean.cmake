file(REMOVE_RECURSE
  "CMakeFiles/sparta_cli.dir/sparta_cli.cpp.o"
  "CMakeFiles/sparta_cli.dir/sparta_cli.cpp.o.d"
  "sparta_cli"
  "sparta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

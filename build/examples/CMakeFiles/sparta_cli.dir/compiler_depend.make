# Empty compiler generated dependencies file for sparta_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/algo_race.dir/algo_race.cpp.o"
  "CMakeFiles/algo_race.dir/algo_race.cpp.o.d"
  "algo_race"
  "algo_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/algo_race.cpp" "examples/CMakeFiles/algo_race.dir/algo_race.cpp.o" "gcc" "examples/CMakeFiles/algo_race.dir/algo_race.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sparta_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_topk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sparta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

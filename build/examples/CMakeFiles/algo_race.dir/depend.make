# Empty dependencies file for algo_race.
# This may be replaced when dependencies are built.

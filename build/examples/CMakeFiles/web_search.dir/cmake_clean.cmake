file(REMOVE_RECURSE
  "CMakeFiles/web_search.dir/web_search.cpp.o"
  "CMakeFiles/web_search.dir/web_search.cpp.o.d"
  "web_search"
  "web_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for web_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analytics_topn.dir/analytics_topn.cpp.o"
  "CMakeFiles/analytics_topn.dir/analytics_topn.cpp.o.d"
  "analytics_topn"
  "analytics_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

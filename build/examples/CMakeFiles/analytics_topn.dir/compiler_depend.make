# Empty compiler generated dependencies file for analytics_topn.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topk[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_sparta[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_threaded_stress[1]_include.cmake")
include("/root/repo/build/tests/test_compression[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")

# Empty compiler generated dependencies file for test_sparta.
# This may be replaced when dependencies are built.

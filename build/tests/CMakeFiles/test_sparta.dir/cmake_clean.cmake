file(REMOVE_RECURSE
  "CMakeFiles/test_sparta.dir/test_sparta.cpp.o"
  "CMakeFiles/test_sparta.dir/test_sparta.cpp.o.d"
  "test_sparta"
  "test_sparta.pdb"
  "test_sparta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

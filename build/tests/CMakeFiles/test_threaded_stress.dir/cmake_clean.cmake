file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_stress.dir/test_threaded_stress.cpp.o"
  "CMakeFiles/test_threaded_stress.dir/test_threaded_stress.cpp.o.d"
  "test_threaded_stress"
  "test_threaded_stress.pdb"
  "test_threaded_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

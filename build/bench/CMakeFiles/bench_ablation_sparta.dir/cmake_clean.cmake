file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparta.dir/bench_ablation_sparta.cpp.o"
  "CMakeFiles/bench_ablation_sparta.dir/bench_ablation_sparta.cpp.o.d"
  "bench_ablation_sparta"
  "bench_ablation_sparta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_sparta.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_exact.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_exact.dir/bench_table2_exact.cpp.o"
  "CMakeFiles/bench_table2_exact.dir/bench_table2_exact.cpp.o.d"
  "bench_table2_exact"
  "bench_table2_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_dynamics.
# This may be replaced when dependencies are built.

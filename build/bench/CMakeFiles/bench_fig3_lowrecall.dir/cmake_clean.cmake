file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lowrecall.dir/bench_fig3_lowrecall.cpp.o"
  "CMakeFiles/bench_fig3_lowrecall.dir/bench_fig3_lowrecall.cpp.o.d"
  "bench_fig3_lowrecall"
  "bench_fig3_lowrecall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lowrecall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
